"""Fast-path vs reference equivalence for the PagedTransformer.

``use_fast_paths`` switches the forward pass between the per-layer
reference path (split + write + tiled kernel per layer) and the
vectorized one (hoisted planning, batched decode kernel, vectorized
multi-token kernel).  Both must produce the same logits for every batch
shape — the fast path is pure mechanics, never different math.
"""

import numpy as np
import pytest

from repro.kvcache import KVStorage
from repro.model import tiny_llama_config, tiny_opt_config
from repro.model.transformer import ForwardRequest, PagedTransformer

TOL = dict(rtol=1e-9, atol=1e-9)


@pytest.fixture(params=["opt", "llama"])
def config(request):
    if request.param == "opt":
        return tiny_opt_config()
    return tiny_llama_config()


def paired_models(config, num_slots=256, seed=0):
    """Two identically-seeded models, fast paths on vs off."""
    fast = PagedTransformer(
        config, KVStorage(config, num_slots=num_slots), seed=seed
    )
    reference = PagedTransformer(
        config, KVStorage(config, num_slots=num_slots), seed=seed,
        use_fast_paths=False,
    )
    assert fast.use_fast_paths and not reference.use_fast_paths
    return fast, reference


def run_both(fast, reference, batches):
    """Run the same batch sequence through both models, comparing logits."""
    for batch in batches:
        out_fast = fast.forward(batch)
        out_ref = reference.forward(batch)
        assert len(out_fast) == len(out_ref)
        for got, want in zip(out_fast, out_ref):
            np.testing.assert_allclose(got, want, **TOL)


class TestFastPathEquivalence:
    def test_prefill_batch(self, config):
        rng = np.random.default_rng(0)
        fast, reference = paired_models(config)
        batch = []
        used = 0
        for n in (7, 12, 1):
            ids = rng.integers(0, config.vocab_size, size=n)
            batch.append(
                ForwardRequest(
                    input_ids=ids, context_slots=list(range(used, used + n))
                )
            )
            used += n
        run_both(fast, reference, [batch])

    def test_decode_batch_dispatches_batched_kernel(self, config):
        """All-generation batches hit the batched decode kernel; logits
        and cache writes must still match the per-layer reference."""
        rng = np.random.default_rng(1)
        fast, reference = paired_models(config)
        prefills, decodes = [], []
        used = 0
        for n in (5, 9, 3, 6):
            slots = list(range(used, used + n + 1))
            used += n + 1
            ids = rng.integers(0, config.vocab_size, size=n)
            prefills.append(ForwardRequest(input_ids=ids, context_slots=slots[:n]))
            decodes.append(
                ForwardRequest(
                    input_ids=rng.integers(0, config.vocab_size, size=1),
                    context_slots=slots,
                )
            )
        run_both(fast, reference, [prefills, decodes])
        # State written by the decode step matches slot-for-slot.
        np.testing.assert_allclose(
            fast.storage.k, reference.storage.k, **TOL
        )
        np.testing.assert_allclose(
            fast.storage.v, reference.storage.v, **TOL
        )

    def test_mixed_batch(self, config):
        rng = np.random.default_rng(2)
        fast, reference = paired_models(config)
        warm = [
            ForwardRequest(
                input_ids=rng.integers(0, config.vocab_size, size=4),
                context_slots=[20, 21, 22, 23],
            )
        ]
        mixed = [
            ForwardRequest(
                input_ids=rng.integers(0, config.vocab_size, size=6),
                context_slots=list(range(6)),
            ),
            ForwardRequest(
                input_ids=rng.integers(0, config.vocab_size, size=1),
                context_slots=[20, 21, 22, 23, 24],
            ),
        ]
        run_both(fast, reference, [warm, mixed])

    def test_dropped_prefix_recompute(self, config):
        """Sub-request splitting (Figure 8d) goes through the hoisted
        span plan on the fast path."""
        rng = np.random.default_rng(3)
        dropped, cached, prompt = 3, 5, 4
        total = dropped + cached + prompt
        tokens = rng.integers(0, config.vocab_size, size=total)
        slots = list(rng.permutation(100)[:total])
        fast, reference = paired_models(config)
        warm = [
            ForwardRequest(
                input_ids=tokens[: dropped + cached],
                context_slots=slots[: dropped + cached],
            )
        ]
        new_prefix = list(range(110, 110 + dropped))
        recompute = [
            ForwardRequest(
                input_ids=np.concatenate(
                    [tokens[:dropped], tokens[dropped + cached:]]
                ),
                context_slots=new_prefix + slots[dropped:],
                dropped=dropped,
            )
        ]
        run_both(fast, reference, [warm, recompute])

    def test_multi_turn_conversation(self, config):
        """Cache state built by the fast path keeps later turns equal."""
        rng = np.random.default_rng(4)
        fast, reference = paired_models(config)
        history = 0
        batches = []
        for turn_len in (6, 1, 1, 4, 1):
            ids = rng.integers(0, config.vocab_size, size=turn_len)
            slots = list(range(history + turn_len))
            history += turn_len
            batches.append([ForwardRequest(input_ids=ids, context_slots=slots)])
        run_both(fast, reference, batches)

    def test_toggle_mid_stream(self, config):
        """Flipping use_fast_paths between steps never changes results —
        the two paths share the same cache layout."""
        rng = np.random.default_rng(5)
        storage = KVStorage(config, num_slots=64)
        model = PagedTransformer(config, storage, seed=0)
        mirror = PagedTransformer(
            config, KVStorage(config, num_slots=64), seed=0
        )
        history = 0
        for i, turn_len in enumerate((5, 1, 1, 2)):
            ids = rng.integers(0, config.vocab_size, size=turn_len)
            slots = list(range(history + turn_len))
            history += turn_len
            model.use_fast_paths = i % 2 == 0
            batch_a = [ForwardRequest(input_ids=ids, context_slots=slots)]
            batch_b = [ForwardRequest(input_ids=ids, context_slots=slots)]
            got = model.forward(batch_a)[0]
            want = mirror.forward(batch_b)[0]
            np.testing.assert_allclose(got, want, **TOL)
