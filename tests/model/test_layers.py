"""Tests for elementary layers."""

import numpy as np
import pytest

from repro.model.layers import (
    LayerNorm,
    Linear,
    OptMlp,
    RMSNorm,
    SwiGluMlp,
    relu,
    silu,
    softmax,
)


class TestActivations:
    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 3.0])

    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_silu_approaches_identity_for_large_x(self):
        assert silu(np.array([20.0]))[0] == pytest.approx(20.0, rel=1e-6)

    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(0).standard_normal((3, 5))
        s = softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0)

    def test_softmax_stable_for_large_inputs(self):
        s = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(s))
        assert s[1] > s[0]


class TestNorms:
    def test_layernorm_zero_mean_unit_var(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 16)) * 7 + 3
        y = LayerNorm.identity(16)(x)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(y.var(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_gain_bias(self):
        x = np.random.default_rng(2).standard_normal((2, 8))
        norm = LayerNorm(gain=np.full(8, 2.0), bias=np.full(8, 1.0))
        base = LayerNorm.identity(8)(x)
        np.testing.assert_allclose(norm(x), base * 2.0 + 1.0)

    def test_rmsnorm_unit_rms(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 16)) * 5
        y = RMSNorm.identity(16)(x)
        rms = np.sqrt((y * y).mean(axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_rmsnorm_does_not_recenter(self):
        x = np.ones((1, 8)) * 4.0
        y = RMSNorm.identity(8)(x)
        # All-equal input stays all-equal (mean is NOT subtracted).
        np.testing.assert_allclose(y, 1.0, atol=1e-4)


class TestLinear:
    def test_matmul_with_bias(self):
        lin = Linear(weight=np.eye(3), bias=np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(
            lin(np.array([[1.0, 0.0, 0.0]])), [[2.0, 2.0, 3.0]]
        )

    def test_no_bias(self):
        lin = Linear(weight=np.eye(2) * 2)
        np.testing.assert_array_equal(lin(np.array([[3.0, 4.0]])), [[6.0, 8.0]])

    def test_init_shapes_and_determinism(self):
        a = Linear.init(np.random.default_rng(7), 8, 16)
        b = Linear.init(np.random.default_rng(7), 8, 16)
        assert a.weight.shape == (8, 16)
        np.testing.assert_array_equal(a.weight, b.weight)


class TestMlps:
    def test_opt_mlp_shapes(self):
        mlp = OptMlp.init(np.random.default_rng(0), 8, 32)
        out = mlp(np.random.default_rng(1).standard_normal((5, 8)))
        assert out.shape == (5, 8)

    def test_swiglu_mlp_shapes(self):
        mlp = SwiGluMlp.init(np.random.default_rng(0), 8, 24)
        out = mlp(np.random.default_rng(1).standard_normal((5, 8)))
        assert out.shape == (5, 8)

    def test_swiglu_has_no_biases(self):
        mlp = SwiGluMlp.init(np.random.default_rng(0), 8, 24)
        assert mlp.gate.bias is None
        assert mlp.up.bias is None
        assert mlp.down.bias is None
