"""End-to-end tests for the paged numpy transformer.

The central claims verified here are the correctness claims behind
Pensieve's design: serving a conversation *statefully* — across turns,
through arbitrary physical scattering, with dropped prefixes recomputed —
produces logits identical to a stateless from-scratch run.
"""

import numpy as np
import pytest

from repro.kvcache import KVStorage
from repro.model import tiny_llama_config, tiny_opt_config
from repro.model.transformer import ForwardRequest, PagedTransformer


def make_model(config, num_slots=256, seed=0):
    storage = KVStorage(config, num_slots=num_slots)
    return PagedTransformer(config, storage, seed=seed), storage


def prefill_from_scratch(config, token_ids, slots, seed=0):
    """Reference: a fresh model instance prefilling the whole sequence."""
    model, _ = make_model(config, seed=seed)
    request = ForwardRequest(input_ids=token_ids, context_slots=slots)
    return model.forward([request])[0]


@pytest.fixture(params=["opt", "llama"])
def config(request):
    if request.param == "opt":
        return tiny_opt_config()
    return tiny_llama_config()


class TestBasicForward:
    def test_prefill_shapes(self, config):
        model, _ = make_model(config)
        tokens = np.arange(10) % config.vocab_size
        request = ForwardRequest(input_ids=tokens, context_slots=list(range(10)))
        logits = model.forward([request])[0]
        assert logits.shape == (10, config.vocab_size)

    def test_decode_step_shape(self, config):
        model, _ = make_model(config)
        prefill = ForwardRequest(input_ids=[1, 2, 3], context_slots=[0, 1, 2])
        model.forward([prefill])
        decode = ForwardRequest(input_ids=[4], context_slots=[0, 1, 2, 3])
        logits = model.next_token_logits([decode])[0]
        assert logits.shape == (config.vocab_size,)

    def test_deterministic(self, config):
        tokens = np.arange(8)
        a = prefill_from_scratch(config, tokens, list(range(8)))
        b = prefill_from_scratch(config, tokens, list(range(8)))
        np.testing.assert_array_equal(a, b)

    def test_empty_batch(self, config):
        model, _ = make_model(config)
        assert model.forward([]) == []

    def test_greedy_token(self, config):
        model, _ = make_model(config)
        logits = np.zeros(config.vocab_size)
        logits[17] = 5.0
        assert model.greedy_token(logits) == 17


class TestStatefulEqualsStateless:
    def test_two_turn_conversation_matches_from_scratch(self, config):
        """Turn 1 prefill + turn 2 prefill reusing cache == single
        prefill of the concatenated sequence."""
        rng = np.random.default_rng(5)
        turn1 = rng.integers(0, config.vocab_size, size=9)
        turn2 = rng.integers(0, config.vocab_size, size=6)
        full = np.concatenate([turn1, turn2])
        slots = list(rng.permutation(256)[:15])

        expected = prefill_from_scratch(config, full, slots)

        model, _ = make_model(config)
        model.forward(
            [ForwardRequest(input_ids=turn1, context_slots=slots[:9])]
        )
        logits = model.forward(
            [ForwardRequest(input_ids=turn2, context_slots=slots)]
        )[0]
        np.testing.assert_allclose(logits, expected[9:], rtol=1e-9, atol=1e-9)

    def test_decode_matches_prefill_logits(self, config):
        """Generating token-by-token yields the same next-token logits as
        prefilling the same prefix in one shot."""
        rng = np.random.default_rng(6)
        tokens = rng.integers(0, config.vocab_size, size=7)
        slots = list(rng.permutation(64)[:7])
        expected = prefill_from_scratch(config, tokens, slots)

        model, _ = make_model(config)
        model.forward(
            [ForwardRequest(input_ids=tokens[:3], context_slots=slots[:3])]
        )
        for i in range(3, 7):
            logits = model.forward(
                [
                    ForwardRequest(
                        input_ids=tokens[i : i + 1], context_slots=slots[: i + 1]
                    )
                ]
            )[0]
            np.testing.assert_allclose(logits[0], expected[i], rtol=1e-9, atol=1e-9)

    def test_physical_scattering_is_invisible(self, config):
        """Same logical sequence at two different physical layouts gives
        identical logits."""
        rng = np.random.default_rng(7)
        tokens = rng.integers(0, config.vocab_size, size=12)
        a = prefill_from_scratch(config, tokens, list(range(12)))
        b = prefill_from_scratch(config, tokens, list(rng.permutation(200)[:12]))
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)

    def test_swap_round_trip_preserves_logits(self, config):
        """Simulate swap-out/swap-in: copy KV rows to a host buffer, move
        them to different slots, and continue decoding — logits must match
        an uninterrupted run."""
        rng = np.random.default_rng(8)
        tokens = rng.integers(0, config.vocab_size, size=10)
        slots = list(range(10))

        # Uninterrupted reference.
        model_ref, _ = make_model(config)
        model_ref.forward(
            [ForwardRequest(input_ids=tokens[:9], context_slots=slots[:9])]
        )
        expected = model_ref.forward(
            [ForwardRequest(input_ids=tokens[9:], context_slots=slots)]
        )[0]

        # Interrupted run: after prefill, evict rows 0..4 to "CPU" and
        # restore them into different physical slots.
        model, storage = make_model(config)
        model.forward(
            [ForwardRequest(input_ids=tokens[:9], context_slots=slots[:9])]
        )
        host_k, host_v = storage.read_all_layers(slots[:5])
        storage.k[:, slots[:5]] = 0.0  # slots handed to someone else
        storage.v[:, slots[:5]] = 0.0
        new_slots = list(range(100, 105))
        storage.write_all_layers(new_slots, host_k, host_v)
        moved = new_slots + slots[5:]
        logits = model.forward(
            [ForwardRequest(input_ids=tokens[9:], context_slots=moved)]
        )[0]
        np.testing.assert_allclose(logits, expected, rtol=1e-9, atol=1e-9)


class TestDroppedPrefixRecompute:
    def test_recomputed_prefix_matches_from_scratch(self, config):
        """Figure 8: dropped leading tokens are recomputed alongside the
        new prompt (two disconnected query ranges) while the middle comes
        from cache — final logits equal the stateless run."""
        rng = np.random.default_rng(9)
        dropped, cached, prompt = 4, 6, 5
        total = dropped + cached + prompt
        tokens = rng.integers(0, config.vocab_size, size=total)
        slots = list(rng.permutation(128)[:total])

        expected = prefill_from_scratch(config, tokens, slots)

        model, storage = make_model(config)
        # Turn 1 populated the full prefix (dropped + cached)...
        model.forward(
            [
                ForwardRequest(
                    input_ids=tokens[: dropped + cached],
                    context_slots=slots[: dropped + cached],
                )
            ]
        )
        # ...then the leading ``dropped`` tokens were discarded.
        storage.k[:, slots[:dropped]] = 0.0
        storage.v[:, slots[:dropped]] = 0.0
        # New physical homes for the recomputed prefix.
        new_prefix_slots = list(range(120, 120 + dropped))
        context = new_prefix_slots + slots[dropped:]
        request = ForwardRequest(
            input_ids=np.concatenate([tokens[:dropped], tokens[dropped + cached:]]),
            context_slots=context,
            dropped=dropped,
        )
        logits = model.forward([request])[0]
        # The last ``prompt`` rows are the new prompt's logits.
        np.testing.assert_allclose(
            logits[dropped:], expected[dropped + cached:], rtol=1e-9, atol=1e-9
        )
        # And the recomputed prefix reproduces its original logits too.
        np.testing.assert_allclose(
            logits[:dropped], expected[:dropped], rtol=1e-9, atol=1e-9
        )


class TestUnifiedBatching:
    def test_mixed_phase_batch_equals_separate_execution(self, config):
        """One batch mixing a prefill request and a decode request gives
        the same per-request logits as running them in isolation (§4.2)."""
        rng = np.random.default_rng(10)
        pre_tokens = rng.integers(0, config.vocab_size, size=6)
        dec_history = rng.integers(0, config.vocab_size, size=4)
        dec_token = rng.integers(0, config.vocab_size, size=1)

        # Isolated runs.
        model_a, _ = make_model(config)
        expected_pre = model_a.forward(
            [ForwardRequest(input_ids=pre_tokens, context_slots=list(range(6)))]
        )[0]
        model_b, _ = make_model(config)
        model_b.forward(
            [ForwardRequest(input_ids=dec_history, context_slots=list(range(10, 14)))]
        )
        expected_dec = model_b.forward(
            [ForwardRequest(input_ids=dec_token, context_slots=list(range(10, 15)))]
        )[0]

        # Unified batch.
        model, _ = make_model(config)
        model.forward(
            [ForwardRequest(input_ids=dec_history, context_slots=list(range(10, 14)))]
        )
        outs = model.forward(
            [
                ForwardRequest(input_ids=pre_tokens, context_slots=list(range(6))),
                ForwardRequest(input_ids=dec_token, context_slots=list(range(10, 15))),
            ]
        )
        np.testing.assert_allclose(outs[0], expected_pre, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(outs[1], expected_dec, rtol=1e-9, atol=1e-9)


class TestValidation:
    def test_too_many_input_tokens(self, config):
        with pytest.raises(ValueError):
            ForwardRequest(input_ids=[1, 2, 3], context_slots=[0, 1])

    def test_bad_dropped(self, config):
        with pytest.raises(ValueError):
            ForwardRequest(input_ids=[1, 2], context_slots=[0, 1, 2], dropped=3)

    def test_positions_length_mismatch(self, config):
        with pytest.raises(ValueError):
            ForwardRequest(
                input_ids=[1, 2],
                context_slots=[0, 1],
                positions=np.array([0]),
            )

    def test_storage_mismatch_rejected(self):
        opt = tiny_opt_config()
        llama = tiny_llama_config()
        storage = KVStorage(opt, num_slots=16)
        with pytest.raises(ValueError):
            PagedTransformer(llama, storage)
