"""Tests for model configurations (Table 1 of the paper)."""

import pytest

from repro.model import (
    LLAMA2_13B,
    LLAMA2_70B,
    OPT_13B,
    OPT_66B,
    PAPER_MODELS,
    ModelConfig,
    tiny_llama_config,
    tiny_opt_config,
)


class TestTable1:
    """Hyper-parameters must match Table 1 exactly."""

    def test_opt_13b(self):
        assert OPT_13B.num_layers == 40
        assert OPT_13B.hidden_size == 5120
        assert OPT_13B.num_heads == 40
        assert OPT_13B.num_kv_heads == 40
        assert OPT_13B.head_dim == 128
        assert OPT_13B.num_gpus == 1

    def test_opt_66b(self):
        assert OPT_66B.num_layers == 64
        assert OPT_66B.hidden_size == 9216
        assert OPT_66B.num_heads == 72
        assert OPT_66B.num_kv_heads == 72
        assert OPT_66B.head_dim == 128
        assert OPT_66B.num_gpus == 4

    def test_llama2_13b_uses_paper_modified_gqa(self):
        assert LLAMA2_13B.num_layers == 40
        assert LLAMA2_13B.hidden_size == 5120
        assert LLAMA2_13B.num_heads == 40
        # The paper changes Llama 2-13B's KV heads from 40 to 10.
        assert LLAMA2_13B.num_kv_heads == 10
        assert LLAMA2_13B.gqa_group_size == 4
        assert LLAMA2_13B.num_gpus == 1

    def test_llama2_70b(self):
        assert LLAMA2_70B.num_layers == 80
        assert LLAMA2_70B.hidden_size == 8192
        assert LLAMA2_70B.num_heads == 64
        assert LLAMA2_70B.num_kv_heads == 8
        assert LLAMA2_70B.gqa_group_size == 8
        assert LLAMA2_70B.num_gpus == 4

    def test_registry_contains_all_four(self):
        assert set(PAPER_MODELS) == {
            "OPT-13B",
            "OPT-66B",
            "Llama 2-13B",
            "Llama 2-70B",
        }


class TestDerivedQuantities:
    def test_paper_kv_token_size_example(self):
        """§3.2: a 13B GPT-3 class model stores 0.78 MB per KV-token
        (2 * 40 layers * 5120 units * 2 bytes)."""
        assert OPT_13B.kv_bytes_per_token == 2 * 40 * 5120 * 2
        assert OPT_13B.kv_bytes_per_token / 2**20 == pytest.approx(0.78, abs=0.01)

    def test_gqa_shrinks_kv_tokens_4x(self):
        """§6.2: GQA group size 4 reduces KV memory 4x for Llama 2-13B."""
        mha_equivalent = 2 * 40 * 5120 * 2
        assert LLAMA2_13B.kv_bytes_per_token * 4 == mha_equivalent

    def test_opt66b_kv_growth_matches_paper(self):
        """§6.3: OPT-13B -> OPT-66B KV size grows by 2.88x
        (# layer x # hidden scaling)."""
        ratio = OPT_66B.kv_bytes_per_token / OPT_13B.kv_bytes_per_token
        assert ratio == pytest.approx(2.88, abs=0.01)

    def test_opt66b_compute_grows_faster_than_kv(self):
        """§6.3: computation grows >5x while KV grows 2.88x."""
        compute_ratio = (
            OPT_66B.linear_flops_per_token() / OPT_13B.linear_flops_per_token()
        )
        kv_ratio = OPT_66B.kv_bytes_per_token / OPT_13B.kv_bytes_per_token
        assert compute_ratio > 4.5
        assert compute_ratio > 1.5 * kv_ratio

    def test_param_counts_in_right_ballpark(self):
        assert OPT_13B.param_count == pytest.approx(13e9, rel=0.15)
        assert OPT_66B.param_count == pytest.approx(66e9, rel=0.15)
        assert LLAMA2_13B.param_count == pytest.approx(13e9, rel=0.15)
        assert LLAMA2_70B.param_count == pytest.approx(70e9, rel=0.15)

    def test_attention_flops_linear_in_context(self):
        f1 = OPT_13B.attention_flops_per_token(1000)
        f2 = OPT_13B.attention_flops_per_token(2000)
        assert f2 == pytest.approx(2 * f1)


class TestValidation:
    def test_rejects_unknown_arch(self):
        with pytest.raises(ValueError, match="arch"):
            ModelConfig(
                name="x", arch="gpt", num_layers=2, hidden_size=32,
                num_heads=4, num_kv_heads=4, head_dim=8, intermediate_size=64,
            )

    def test_rejects_bad_gqa_grouping(self):
        with pytest.raises(ValueError, match="multiple"):
            ModelConfig(
                name="x", arch="opt", num_layers=2, hidden_size=32,
                num_heads=4, num_kv_heads=3, head_dim=8, intermediate_size=64,
            )

    def test_rejects_head_dim_mismatch(self):
        with pytest.raises(ValueError, match="hidden_size"):
            ModelConfig(
                name="x", arch="opt", num_layers=2, hidden_size=32,
                num_heads=4, num_kv_heads=4, head_dim=16, intermediate_size=64,
            )

    def test_scaled_to_changes_only_gpus(self):
        scaled = OPT_13B.scaled_to(8)
        assert scaled.num_gpus == 8
        assert scaled.num_layers == OPT_13B.num_layers
        assert OPT_13B.num_gpus == 1  # original untouched


class TestTinyConfigs:
    def test_tiny_opt_valid(self):
        cfg = tiny_opt_config()
        assert cfg.arch == "opt"
        assert cfg.num_heads == cfg.num_kv_heads

    def test_tiny_llama_has_gqa(self):
        cfg = tiny_llama_config()
        assert cfg.arch == "llama"
        assert cfg.gqa_group_size == 2
