"""Tests for rotary positional embeddings."""

import numpy as np
import pytest

from repro.model.rope import (
    _TABLE_CACHE,
    apply_rope,
    clear_rope_cache,
    rope_frequencies,
    rope_tables,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFrequencies:
    def test_count_and_range(self):
        freqs = rope_frequencies(8)
        assert freqs.shape == (4,)
        assert freqs[0] == 1.0
        assert np.all(np.diff(freqs) < 0)

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_frequencies(7)


class TestApplyRope:
    def test_position_zero_is_identity(self, rng):
        x = rng.standard_normal((3, 2, 8))
        out = apply_rope(x, np.zeros(3, dtype=np.int64))
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_preserves_norm(self, rng):
        """Rotations are orthogonal: per-head vector norms are unchanged."""
        x = rng.standard_normal((5, 2, 8))
        out = apply_rope(x, np.arange(5) * 13)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-10
        )

    def test_relative_position_property(self, rng):
        """The rotated dot product depends only on the position offset:
        <R(p)q, R(p+d)k> is the same for every p."""
        q = rng.standard_normal((1, 1, 8))
        k = rng.standard_normal((1, 1, 8))
        d = 7
        dots = []
        for p in (0, 11, 100):
            rq = apply_rope(q, np.array([p]))
            rk = apply_rope(k, np.array([p + d]))
            dots.append(float(np.sum(rq * rk)))
        assert dots[0] == pytest.approx(dots[1], rel=1e-9)
        assert dots[1] == pytest.approx(dots[2], rel=1e-9)

    def test_absolute_position_stability(self, rng):
        """Rotating the same token at the same position twice gives the
        same rows — the property that lets cached K survive swap-out and
        swap-in without re-rotation."""
        x = rng.standard_normal((4, 2, 8))
        pos = np.array([3, 17, 1, 256])
        np.testing.assert_array_equal(apply_rope(x, pos), apply_rope(x, pos))

    def test_does_not_modify_input(self, rng):
        x = rng.standard_normal((2, 1, 4))
        original = x.copy()
        apply_rope(x, np.array([5, 9]))
        np.testing.assert_array_equal(x, original)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            apply_rope(rng.standard_normal((2, 4)), np.array([0, 1]))
        with pytest.raises(ValueError):
            apply_rope(rng.standard_normal((2, 1, 4)), np.array([0]))


class TestTableCache:
    def setup_method(self):
        clear_rope_cache()

    def teardown_method(self):
        clear_rope_cache()

    def test_cached_matches_direct_computation(self, rng):
        """Table-cached rotation is bitwise identical to computing the
        angles directly — integer positions hit the same float ops."""
        x = rng.standard_normal((6, 2, 8))
        positions = np.array([0, 3, 17, 255, 256, 1000])
        cached = apply_rope(x, positions)
        clear_rope_cache()
        direct_angles = positions[:, None].astype(np.float64) * rope_frequencies(8)
        cos = np.cos(direct_angles)[:, None, :]
        sin = np.sin(direct_angles)[:, None, :]
        expected = np.empty_like(x)
        expected[..., 0::2] = x[..., 0::2] * cos - x[..., 1::2] * sin
        expected[..., 1::2] = x[..., 0::2] * sin + x[..., 1::2] * cos
        np.testing.assert_array_equal(cached, expected)

    def test_grows_geometrically(self):
        cos, _ = rope_tables(8, max_position=10)
        assert cos.shape[0] == 256  # _MIN_TABLE
        cos, _ = rope_tables(8, max_position=256)
        assert cos.shape[0] == 512
        cos, _ = rope_tables(8, max_position=2000)
        assert cos.shape[0] == 2048
        # Shrinking requests reuse the grown table.
        cos_again, _ = rope_tables(8, max_position=5)
        assert cos_again is cos

    def test_keyed_by_dim_and_base(self):
        rope_tables(8, max_position=1)
        rope_tables(8, base=500.0, max_position=1)
        rope_tables(4, max_position=1)
        assert set(_TABLE_CACHE) == {(8, 10000.0), (8, 500.0), (4, 10000.0)}

    def test_clear(self):
        rope_tables(8, max_position=1)
        assert _TABLE_CACHE
        clear_rope_cache()
        assert not _TABLE_CACHE

    def test_negative_positions_bypass_cache(self, rng):
        """Negative offsets (not valid token positions) still rotate
        correctly via the direct path and never populate the cache."""
        x = rng.standard_normal((2, 1, 8))
        out = apply_rope(x, np.array([-4, -1]))
        assert not _TABLE_CACHE
        assert np.isfinite(out).all()

    def test_float_positions_match_integer(self, rng):
        x = rng.standard_normal((3, 1, 8))
        via_cache = apply_rope(x, np.array([1, 7, 30]))
        direct = apply_rope(x, np.array([1.0, 7.0, 30.0]))
        np.testing.assert_allclose(via_cache, direct, atol=1e-12)
