"""Tests for rotary positional embeddings."""

import numpy as np
import pytest

from repro.model.rope import apply_rope, rope_frequencies


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFrequencies:
    def test_count_and_range(self):
        freqs = rope_frequencies(8)
        assert freqs.shape == (4,)
        assert freqs[0] == 1.0
        assert np.all(np.diff(freqs) < 0)

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_frequencies(7)


class TestApplyRope:
    def test_position_zero_is_identity(self, rng):
        x = rng.standard_normal((3, 2, 8))
        out = apply_rope(x, np.zeros(3, dtype=np.int64))
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_preserves_norm(self, rng):
        """Rotations are orthogonal: per-head vector norms are unchanged."""
        x = rng.standard_normal((5, 2, 8))
        out = apply_rope(x, np.arange(5) * 13)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-10
        )

    def test_relative_position_property(self, rng):
        """The rotated dot product depends only on the position offset:
        <R(p)q, R(p+d)k> is the same for every p."""
        q = rng.standard_normal((1, 1, 8))
        k = rng.standard_normal((1, 1, 8))
        d = 7
        dots = []
        for p in (0, 11, 100):
            rq = apply_rope(q, np.array([p]))
            rk = apply_rope(k, np.array([p + d]))
            dots.append(float(np.sum(rq * rk)))
        assert dots[0] == pytest.approx(dots[1], rel=1e-9)
        assert dots[1] == pytest.approx(dots[2], rel=1e-9)

    def test_absolute_position_stability(self, rng):
        """Rotating the same token at the same position twice gives the
        same rows — the property that lets cached K survive swap-out and
        swap-in without re-rotation."""
        x = rng.standard_normal((4, 2, 8))
        pos = np.array([3, 17, 1, 256])
        np.testing.assert_array_equal(apply_rope(x, pos), apply_rope(x, pos))

    def test_does_not_modify_input(self, rng):
        x = rng.standard_normal((2, 1, 4))
        original = x.copy()
        apply_rope(x, np.array([5, 9]))
        np.testing.assert_array_equal(x, original)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            apply_rope(rng.standard_normal((2, 4)), np.array([0, 1]))
        with pytest.raises(ValueError):
            apply_rope(rng.standard_normal((2, 1, 4)), np.array([0]))
