"""Tests for workload trace save/replay."""

import json

import pytest

from repro.workload.dataset import SHAREGPT, generate_conversations
from repro.workload.trace import (
    TRACE_VERSION,
    conversations_from_dict,
    conversations_to_dict,
    load_trace,
    save_trace,
)


@pytest.fixture
def workload():
    return generate_conversations(SHAREGPT, 20, request_rate=2.0, seed=11)


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, workload):
        replayed = conversations_from_dict(conversations_to_dict(workload))
        assert len(replayed) == len(workload)
        for original, copy in zip(workload, replayed):
            assert copy.conv_id == original.conv_id
            assert copy.start_time == original.start_time
            assert copy.think_times == original.think_times
            assert [(t.prompt_tokens, t.output_tokens) for t in copy.turns] == [
                (t.prompt_tokens, t.output_tokens) for t in original.turns
            ]

    def test_file_round_trip(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(workload, path, meta={"dataset": "ShareGPT", "seed": 11})
        replayed = load_trace(path)
        assert len(replayed) == len(workload)
        payload = json.loads(path.read_text())
        assert payload["version"] == TRACE_VERSION
        assert payload["meta"]["dataset"] == "ShareGPT"

    def test_replay_drives_identical_simulation(self, workload, tmp_path):
        """Serving the replayed trace gives bit-identical metrics."""
        from repro.experiments.common import run_serving_once
        from repro.serving import make_vllm

        from tests.serving.conftest import TINY, spec_with_capacity

        path = tmp_path / "trace.json"
        save_trace(workload, path)
        factory = lambda loop: make_vllm(loop, TINY, spec_with_capacity(2048))
        _, stats_a = run_serving_once(factory, workload)
        _, stats_b = run_serving_once(factory, load_trace(path))
        assert stats_a.throughput_rps == stats_b.throughput_rps
        assert stats_a.mean_normalized_latency == stats_b.mean_normalized_latency


class TestValidation:
    def test_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            conversations_from_dict({"version": 99, "conversations": []})

    def test_malformed_record_rejected(self):
        data = {
            "version": TRACE_VERSION,
            "conversations": [{"conv_id": 0, "turns": [[3, 4]]}],  # no times
        }
        with pytest.raises(ValueError, match="malformed"):
            conversations_from_dict(data)

    def test_empty_trace_ok(self):
        assert conversations_from_dict(
            {"version": TRACE_VERSION, "conversations": []}
        ) == []
