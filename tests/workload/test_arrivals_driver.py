"""Tests for arrival processes, the tokenizer and the conversation driver."""

import numpy as np
import pytest

from repro.serving import make_vllm
from repro.sim import EventLoop
from repro.workload import (
    ConversationDriver,
    SimpleTokenizer,
    exponential_think_times,
    poisson_arrivals,
)

from tests.serving.conftest import TINY, scripted_conversation, spec_with_capacity


class TestPoissonArrivals:
    def test_strictly_increasing(self):
        times = poisson_arrivals(np.random.default_rng(0), rate=2.0, count=100)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_gap_matches_rate(self):
        times = poisson_arrivals(np.random.default_rng(0), rate=4.0, count=5000)
        gaps = np.diff([0.0] + times)
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.1)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, rate=0.0, count=5)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, rate=1.0, count=-1)


class TestThinkTimes:
    def test_mean(self):
        times = exponential_think_times(np.random.default_rng(0), 60.0, 5000)
        assert np.mean(times) == pytest.approx(60.0, rel=0.1)

    def test_zero_mean_gives_zeros(self):
        assert exponential_think_times(np.random.default_rng(0), 0.0, 3) == [0.0] * 3

    def test_empty(self):
        assert exponential_think_times(np.random.default_rng(0), 60.0, 0) == []


class TestTokenizer:
    def test_round_trip(self):
        tok = SimpleTokenizer()
        ids = tok.encode("Hello, world! Hello again")
        assert tok.decode(ids) == "hello , world ! hello again"

    def test_same_word_same_id(self):
        tok = SimpleTokenizer()
        a = tok.encode("cache")
        b = tok.encode("cache cache")
        assert b == a * 2

    def test_vocab_overflow_maps_to_unk(self):
        tok = SimpleTokenizer(vocab_size=8)
        tok.encode("a b c d")  # fills 4..7
        ids = tok.encode("zebra")
        assert ids == [SimpleTokenizer.UNK]

    def test_reserved_ids(self):
        tok = SimpleTokenizer()
        assert tok.decode([0, 1, 2, 3]) == "<pad> <bos> <eos> <unk>"

    def test_min_vocab(self):
        with pytest.raises(ValueError):
            SimpleTokenizer(vocab_size=4)


class TestConversationDriver:
    def factory(self):
        return lambda loop: make_vllm(loop, TINY, spec_with_capacity(2048))

    def test_runs_all_turns(self):
        loop = EventLoop()
        engine = self.factory()(loop)
        convs = [scripted_conversation(i, [(5, 3), (4, 2)]) for i in range(3)]
        driver = ConversationDriver(loop, engine, convs)
        driver.run()
        assert driver.outstanding == 0
        assert len(engine.metrics) == 6

    def test_think_time_delays_next_turn(self):
        loop = EventLoop()
        engine = self.factory()(loop)
        conv = scripted_conversation(0, [(5, 3), (4, 2)], think=100.0)
        ConversationDriver(loop, engine, [conv]).run()
        first, second = engine.metrics.records
        assert second.arrival_time >= first.finish_time + 100.0

    def test_horizon_cuts_off(self):
        loop = EventLoop()
        engine = self.factory()(loop)
        conv = scripted_conversation(0, [(5, 3), (4, 2)], think=1000.0)
        driver = ConversationDriver(loop, engine, [conv])
        driver.run(until=10.0)
        assert len(engine.metrics) == 1
        assert driver.outstanding == 1

    def test_double_registration_rejected(self):
        loop = EventLoop()
        engine = self.factory()(loop)
        ConversationDriver(loop, engine, [])
        with pytest.raises(RuntimeError):
            ConversationDriver(loop, engine, [])
