"""Tests for the synthetic conversation datasets (Table 2)."""

import numpy as np
import pytest

from repro.workload import SHAREGPT, ULTRACHAT, DatasetSpec, dataset_statistics
from repro.workload.dataset import (
    generate_conversation,
    generate_conversations,
    generate_workload,
)


class TestSpecs:
    def test_paper_parameters(self):
        assert SHAREGPT.mean_turns == 5.56
        assert SHAREGPT.mean_input_len == 37.77
        assert SHAREGPT.mean_output_len == 204.58
        assert ULTRACHAT.mean_turns == 3.86
        assert ULTRACHAT.mean_input_len == 51.78
        assert ULTRACHAT.mean_output_len == 257.81

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", mean_turns=0.5, mean_input_len=10, mean_output_len=10)
        with pytest.raises(ValueError):
            DatasetSpec("x", mean_turns=2, mean_input_len=0, mean_output_len=10)


class TestGeneratedStatistics:
    @pytest.mark.parametrize("spec", [SHAREGPT, ULTRACHAT], ids=lambda s: s.name)
    def test_means_match_table2(self, spec):
        """Generated corpora must reproduce Table 2 within sampling noise."""
        convs = [
            generate_conversation(spec, i, np.random.default_rng(1000 + i))
            for i in range(4000)
        ]
        stats = dataset_statistics(convs)
        assert stats["mean_turns"] == pytest.approx(spec.mean_turns, rel=0.1)
        assert stats["mean_input_len"] == pytest.approx(spec.mean_input_len, rel=0.1)
        assert stats["mean_output_len"] == pytest.approx(
            spec.mean_output_len, rel=0.1
        )

    def test_context_cap_respected(self):
        convs = [
            generate_conversation(SHAREGPT, i, np.random.default_rng(i))
            for i in range(2000)
        ]
        assert max(c.total_tokens() for c in convs) <= SHAREGPT.max_context

    def test_every_conversation_has_a_turn(self):
        tiny_cap = DatasetSpec(
            "cap", mean_turns=3, mean_input_len=50, mean_output_len=300,
            max_context=128,
        )
        convs = [
            generate_conversation(tiny_cap, i, np.random.default_rng(i))
            for i in range(200)
        ]
        assert all(c.num_turns >= 1 for c in convs)
        assert all(c.total_tokens() <= 128 for c in convs)

    def test_lengths_heavy_tailed(self):
        """Lognormal outputs: p99 well above the mean (matches real chat)."""
        convs = [
            generate_conversation(SHAREGPT, i, np.random.default_rng(i))
            for i in range(2000)
        ]
        outputs = [t.output_tokens for c in convs for t in c.turns]
        assert np.percentile(outputs, 99) > 3 * np.mean(outputs)


class TestTimedWorkloads:
    def test_generate_conversations_reproducible(self):
        a = generate_conversations(SHAREGPT, 50, request_rate=2.0, seed=5)
        b = generate_conversations(SHAREGPT, 50, request_rate=2.0, seed=5)
        assert [c.start_time for c in a] == [c.start_time for c in b]
        assert [c.num_turns for c in a] == [c.num_turns for c in b]

    def test_think_times_populated(self):
        convs = generate_conversations(
            SHAREGPT, 50, request_rate=2.0, think_time_mean=30.0, seed=5
        )
        flat = [t for c in convs for t in c.think_times]
        assert np.mean(flat) == pytest.approx(30.0, rel=0.25)

    def test_request_rate_controls_arrival_density(self):
        slow = generate_conversations(SHAREGPT, 200, request_rate=1.0, seed=5)
        fast = generate_conversations(SHAREGPT, 200, request_rate=8.0, seed=5)
        assert max(c.start_time for c in fast) < max(c.start_time for c in slow)

    def test_workload_spans_duration(self):
        convs = generate_workload(SHAREGPT, request_rate=4.0, duration=300.0, seed=3)
        starts = [c.start_time for c in convs]
        assert max(starts) <= 300.0
        assert max(starts) > 200.0  # arrivals sustained to the end
        total_requests = sum(c.num_turns for c in convs)
        # Long-run request rate close to the target.
        assert total_requests / 300.0 == pytest.approx(4.0, rel=0.3)

    def test_workload_never_empty(self):
        convs = generate_workload(SHAREGPT, request_rate=0.001, duration=1.0, seed=3)
        assert len(convs) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload(SHAREGPT, request_rate=0, duration=10)
        with pytest.raises(ValueError):
            generate_workload(SHAREGPT, request_rate=1, duration=0)
        with pytest.raises(ValueError):
            generate_conversations(SHAREGPT, 0, request_rate=1)
