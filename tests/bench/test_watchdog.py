"""Bench-history watchdog tests on synthetic ledgers.

The watchdog's contract: a 20% slowdown is always classified as a
regression, improvements pass, a missing family degrades to ``new``
(overall ``warn`` at worst), and no ledger — corrupt, legacy, or absent —
can ever make it raise.
"""

import json

import pytest

from repro.bench.watchdog import (
    FAIL_RATIO,
    FAMILY_KEYS,
    WARN_RATIO,
    WINDOW,
    check_history,
    check_history_file,
    format_report,
    load_history_ledger,
    overall_status,
    trailing_median,
)

DECODE = FAMILY_KEYS["decode"]


def _ledger(values, key=DECODE):
    """A synthetic history ledger: one entry per speedup sample."""
    return [{"summary": {key: value}} for value in values]


def _verdict(verdicts, family="decode"):
    return next(v for v in verdicts if v.family == family)


class TestClassification:
    def test_twenty_percent_slowdown_fails(self):
        history = _ledger([2.0] * 10)
        verdicts = check_history({DECODE: 1.6}, history)  # 2.0 -> 1.6
        verdict = _verdict(verdicts)
        assert verdict.status == "fail"
        assert verdict.ratio == pytest.approx(0.8)
        assert "regression" in verdict.detail
        assert overall_status(verdicts) == "fail"

    def test_matching_median_passes(self):
        verdicts = check_history({DECODE: 2.0}, _ledger([2.0] * 5))
        assert _verdict(verdicts).status == "pass"

    def test_improvement_passes_with_detail(self):
        verdict = _verdict(check_history({DECODE: 3.0}, _ledger([2.0] * 5)))
        assert verdict.status == "pass"
        assert "improved" in verdict.detail

    def test_mild_drift_warns(self):
        # ratio 0.9: between FAIL_RATIO and WARN_RATIO.
        assert FAIL_RATIO < 0.9 < WARN_RATIO
        verdicts = check_history({DECODE: 1.8}, _ledger([2.0] * 5))
        assert _verdict(verdicts).status == "warn"
        assert overall_status(verdicts) == "warn"

    def test_boundaries(self):
        history = _ledger([1.0] * 5)
        assert _verdict(check_history({DECODE: WARN_RATIO}, history)).status == "pass"
        assert _verdict(check_history({DECODE: FAIL_RATIO}, history)).status == "warn"
        just_below = FAIL_RATIO - 1e-9
        assert _verdict(check_history({DECODE: just_below}, history)).status == "fail"

    def test_median_robust_to_one_outlier(self):
        history = _ledger([2.0, 2.0, 2.0, 2.0, 50.0])
        verdict = _verdict(check_history({DECODE: 2.0}, history))
        assert verdict.median == 2.0
        assert verdict.status == "pass"

    def test_window_bounds_the_baseline(self):
        # Ancient 10x entries fall outside the trailing window; only the
        # recent 1x era sets the baseline.
        history = _ledger([10.0] * 10 + [1.0] * WINDOW)
        assert trailing_median(history, DECODE) == 1.0
        assert _verdict(check_history({DECODE: 1.0}, history)).status == "pass"

    def test_every_family_is_classified(self):
        summary = {key: 2.0 for key in FAMILY_KEYS.values()}
        history = [{"summary": dict(summary)} for _ in range(4)]
        verdicts = check_history(summary, history)
        assert sorted(v.family for v in verdicts) == sorted(FAMILY_KEYS)
        assert {v.status for v in verdicts} == {"pass"}
        assert overall_status(verdicts) == "pass"


class TestDegradedInputs:
    def test_missing_family_is_new_and_overall_warn(self):
        history = _ledger([2.0] * 5)
        verdicts = check_history({}, history)
        verdict = _verdict(verdicts)
        assert verdict.status == "new"
        assert verdict.current is None and verdict.median == 2.0
        assert overall_status(verdicts) == "warn"

    def test_empty_history_is_new(self):
        verdict = _verdict(check_history({DECODE: 2.0}, []))
        assert verdict.status == "new"
        assert verdict.current == 2.0 and verdict.median is None

    def test_corrupt_history_never_raises(self):
        corrupt = [
            None,
            42,
            "entry",
            [],
            {"summary": None},
            {"summary": "broken"},
            {"summary": {DECODE: "fast"}},
            {"summary": {DECODE: True}},  # bool is not a speedup
            {"summary": {DECODE: -1.0}},  # negative placeholder
            {"summary": {DECODE: 0}},  # family didn't run
            {"summary": {DECODE: 2.0}},  # the single usable entry
        ]
        verdict = _verdict(check_history({DECODE: 2.0}, corrupt))
        assert verdict.status == "pass"
        assert verdict.median == 2.0

    def test_non_list_history_tolerated(self):
        for history in (None, "garbage", 7, {"history": []}):
            verdicts = check_history({DECODE: 2.0}, history)
            assert _verdict(verdicts).status == "new"

    def test_non_dict_summary_tolerated(self):
        for summary in (None, "x", 3, []):
            verdicts = check_history(summary, _ledger([2.0] * 3))
            assert all(v.status == "new" for v in verdicts)
            assert overall_status(verdicts) == "warn"

    def test_bool_and_nonpositive_current_are_new(self):
        history = _ledger([2.0] * 3)
        for bad in (True, 0, -3.5, "2.0", None):
            assert _verdict(check_history({DECODE: bad}, history)).status == "new"


class TestOverallStatus:
    def test_ranking(self):
        def status_of(statuses):
            verdicts = check_history({}, [])  # all new
            fabricated = [
                type(v)(v.family, s, v.current, v.median, v.ratio, v.detail)
                for v, s in zip(verdicts, statuses + ["pass"] * len(verdicts))
            ]
            return overall_status(fabricated)

        assert status_of(["pass"]) == "pass"
        assert status_of(["new"]) == "warn"
        assert status_of(["warn", "new"]) == "warn"
        assert status_of(["fail", "warn", "new"]) == "fail"

    def test_empty_verdicts_pass(self):
        assert overall_status([]) == "pass"


class TestReportAndLedgerIO:
    def test_format_report_contents(self):
        history = _ledger([2.0] * 6)
        verdicts = check_history({DECODE: 1.5}, history)
        text = format_report(verdicts, history_len=len(history))
        assert "bench history watchdog" in text
        assert f"last {WINDOW} of 6 ledger entries" in text
        assert "decode" in text and "FAIL" in text
        assert text.strip().endswith("overall: FAIL")

    def test_load_history_ledger_missing_file(self, tmp_path):
        assert load_history_ledger(str(tmp_path / "nope.json")) == []

    def test_load_history_ledger_corrupt_json(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text("{not json")
        assert load_history_ledger(str(path)) == []

    def test_load_history_ledger_legacy_schema(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps({"results": [], "summary": {}}))
        assert load_history_ledger(str(path)) == []
        path.write_text(json.dumps({"history": "not-a-list"}))
        assert load_history_ledger(str(path)) == []
        path.write_text(json.dumps([1, 2, 3]))
        assert load_history_ledger(str(path)) == []

    def test_check_history_file_end_to_end(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps({"history": _ledger([2.0] * 8)}))
        verdicts = check_history_file({DECODE: 1.5}, str(path))
        assert _verdict(verdicts).status == "fail"
        # A missing ledger degrades to new, never raises.
        verdicts = check_history_file({DECODE: 1.5}, str(tmp_path / "gone.json"))
        assert _verdict(verdicts).status == "new"

    def test_verdict_as_dict_round_trips(self):
        verdict = _verdict(check_history({DECODE: 1.5}, _ledger([2.0] * 3)))
        payload = json.loads(json.dumps(verdict.as_dict()))
        assert payload["family"] == "decode"
        assert payload["status"] == "fail"
        assert payload["ratio"] == 0.75
