"""Suppression fixtures: justified, bare, and stale."""

import numpy as np


def justified(xs, cache):
    out = []
    for x in xs:
        out.append(np.ascontiguousarray(cache[x]))  # repro: ignore[RPR005] -- fixture models the copy deliberately
    return out


def bare(xs, cache):
    out = []
    for x in xs:
        out.append(np.ascontiguousarray(cache[x]))  # repro: ignore[RPR005]
    return out


def stale(xs):
    return list(xs)  # repro: ignore[RPR005] -- nothing to suppress here
