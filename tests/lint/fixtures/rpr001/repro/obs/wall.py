"""RPR001 negative fixture: obs/ may read the wall clock."""

import time


def now():
    return time.perf_counter()
