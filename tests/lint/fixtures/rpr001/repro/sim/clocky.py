"""RPR001 positive fixture: wall-clock reads in sim-pure code."""

import time
from time import perf_counter
from datetime import datetime


def bad_now():
    return time.time()


def bad_stamp():
    return datetime.now()


def ok_sleepless(clock):
    # Simulated clock reads are fine.
    return clock.now
