"""RPR006 escape hatch: kernel experiments study the kernels themselves."""

from repro.kernels import copyout_attention  # repro: ignore[RPR006] -- the straw-man kernel is the experiment's subject


def good_strawman(requests, k_cache, v_cache):
    return copyout_attention(requests, k_cache, v_cache)
