"""RPR006 negative fixture: the harness times kernels against oracles."""

from repro.kernels import single_token_attention


def good_oracle(requests, k_cache, v_cache):
    return single_token_attention(requests, k_cache, v_cache)
