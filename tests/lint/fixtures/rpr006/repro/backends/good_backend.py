"""RPR006 negative fixture: backends are where kernels are wired up."""

from repro.kernels import batched_single_token_attention, multi_token_attention
from repro.kernels.packed_cache import packed_decode_attention


def good_dispatch(queries, packed, k_cache, v_cache):
    return packed_decode_attention(queries, packed, 0, k_cache, v_cache)
