"""RPR006 positive fixtures: direct attention-kernel use in serving code."""

from repro.kernels import multi_token_attention, packed_decode_attention
from repro.kernels.ring_cache import ring_decode_attention

import repro.kernels


def bad_direct_call(requests, k_cache, v_cache):
    return multi_token_attention(requests, k_cache, v_cache)


def bad_module_reference(queries, packed, k_cache, v_cache):
    return repro.kernels.segment_masked_decode(queries, packed, k_cache, v_cache)
