"""RPR006 negative fixtures: types/helpers carry no kernel choice."""

from repro.kernels import (
    AttentionRequest,
    disjoint_query_spans,
    resolve_scale,
    split_disjoint_query,
)
from repro.kernels.packed_cache import (
    DecodeSlotSource,
    PackedBatch,
    PackedDecodeCache,
)


def good_build_request(query, slots):
    return AttentionRequest(query=query, slots=slots)


def good_span_math(requests):
    return disjoint_query_spans(requests)
