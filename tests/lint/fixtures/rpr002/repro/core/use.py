"""RPR002 positive fixture: every mis-use the rule must catch."""

from repro.faults.plan import FaultSite


def bad(plan, flight, policy):
    plan.fires(FaultSite.SWAP_IN)  # raw draw outside the ladder
    FaultSite("bogus")  # unknown wire name
    member = FaultSite.BOGUS  # unknown member
    flight.record(1, "retry", 0.0, site="bogus")  # unknown attribution
    attempt_with_retries(plan, "swap_in", policy)  # string site
    return member
