"""RPR002 fixture enum (mirrors the real FaultSite shape)."""

import enum


class FaultSite(enum.Enum):
    SWAP_IN = "swap_in"
    GPU_ALLOC = "gpu_alloc"
