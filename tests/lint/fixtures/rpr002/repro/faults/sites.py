"""RPR002 fixture registry, in sync with the fixture enum."""

SITES = {
    "swap_in": ("pcie",),
    "gpu_alloc": ("gpu",),
}
