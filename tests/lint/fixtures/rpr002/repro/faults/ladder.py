"""RPR002 negative fixture: ladder-owner module may draw fires()."""

from repro.faults.plan import FaultSite


def drained(plan):
    return plan.fires(FaultSite.SWAP_IN)
