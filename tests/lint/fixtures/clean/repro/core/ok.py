"""A violation-free fixture tree."""


def tidy(clock):
    return clock.now
