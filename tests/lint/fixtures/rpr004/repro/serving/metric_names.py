"""RPR004 fixture registry."""

HISTOGRAM_NAMES = frozenset(
    {
        "latency_seconds",
        "dead_metric",
    }
)

WALL_HISTOGRAM_NAMES = frozenset({"chat_turn_seconds"})

HISTOGRAM_TIERS = frozenset({"cpu"})

FLIGHT_EVENTS = frozenset({"admit"})

SAMPLED_HISTOGRAMS = frozenset({"unsampled_metric"})
