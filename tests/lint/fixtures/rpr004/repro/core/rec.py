"""RPR004 fixture recorder: declared and undeclared names."""


class Collector:
    def ok(self, now):
        if self.hist.enabled:
            self.hist.hist("latency_seconds").record(1.0)
            self.hist.hist("chat_turn_seconds", clock="wall").record(1.0)
        self.flight.record(1, "admit", now)

    def bad(self, now):
        if self.hist.enabled:
            self.hist.hist("typo_metric").record(1.0)
            self.hist.hist("latency_seconds", tier="tpu").record(1.0)
        self.flight.record(1, "bogus_event", now)
