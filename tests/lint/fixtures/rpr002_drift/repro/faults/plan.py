"""RPR002 drift fixture: enum has a member the registry lacks."""

import enum


class FaultSite(enum.Enum):
    SWAP_IN = "swap_in"
    GPU_ALLOC = "gpu_alloc"
