"""RPR002 drift fixture registry: missing gpu_alloc."""

SITES = {
    "swap_in": ("pcie",),
}
