"""RPR003 fixtures: unguarded vs guarded allocating telemetry."""


class Engine:
    def bad_fstring(self, n):
        self.tracer.count(f"pcie.{n}_bytes", n)

    def bad_dict(self, now):
        self.metrics.flight.record(1, "admit", now, attrs={"k": 1})

    def bad_str(self, request):
        self.tracer.instant("abort", reason=str(request))

    def good_guarded(self, n):
        if self.tracer.enabled:
            self.tracer.count(f"pcie.{n}_bytes", n)

    def good_early_bail(self, n):
        if not self.tracer.enabled:
            return
        self.tracer.count(f"pcie.{n}_bytes", n)

    def good_constant_args(self, n):
        self.tracer.count("pcie.h2d_bytes", n)

    def good_sim_trace(self, now, batch):
        # The sim trace recorder is always-on by design; not a sink.
        self.trace.record(now, "iteration", batch_size=len(batch))
