"""RPR003 negative fixture: bench/ is outside the hot-path scope."""


def report(tracer, label, n):
    tracer.count(f"bench.{label}", n)
