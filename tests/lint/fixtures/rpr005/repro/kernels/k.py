"""RPR005 fixtures: copies inside vs outside kernel loops."""

import numpy as np


def bad_loop(xs, cache):
    out = []
    for x in xs:
        out.append(np.ascontiguousarray(cache[x]))
        staged = cache[x].copy()
        out.append(staged)
    return out


def bad_comprehension(xs, cache):
    return [np.concatenate([cache[x]]) for x in xs]


def good_hoisted(xs, cache):
    gathered = cache[np.asarray(xs)]
    staged = np.ascontiguousarray(gathered)
    parts = [staged[i] for i in range(len(xs))]
    return np.concatenate(parts, axis=0)
