"""Meta-test: the real tree passes its own lint gate.

This is the local mirror of the CI ``repro lint --strict`` job: zero
unsuppressed findings on ``src/repro``, every suppression justified, and
no stale baseline entries.
"""

import json

from repro.cli import main
from repro.lint import Baseline, all_rules, run_lint

from tests.lint.conftest import REPO_ROOT


class TestRepoIsClean:
    def test_strict_lint_passes_on_the_real_tree(self):
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        result = run_lint(REPO_ROOT, baseline=baseline)
        assert result.errors == [], "\n".join(
            f"{f.located()}: {f.rule}: {f.message}" for f in result.errors
        )
        assert result.stale_baseline == []
        assert result.exit_code(strict=True) == 0

    def test_every_suppression_carries_a_justification(self):
        result = run_lint(REPO_ROOT)
        for finding, supp in result.suppressed:
            assert supp.justification, finding.located()

    def test_all_six_rules_ran(self):
        result = run_lint(REPO_ROOT)
        assert result.rules_run == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        ]
        assert result.files_scanned > 50
        assert len(all_rules()) == 6


class TestCliSmoke:
    def test_lint_subcommand_strict_json(self, capsys, tmp_path):
        out_path = tmp_path / "lint.json"
        code = main([
            "lint", "--root", str(REPO_ROOT), "--strict", "--json",
            "--output", str(out_path),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert [r["code"] for r in payload["rules"]] == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        ]
        # The --output artifact is byte-identical to stdout.
        assert json.loads(out_path.read_text()) == payload

    def test_lint_text_mode_reports_summary_line(self, capsys):
        code = main(["lint", "--root", str(REPO_ROOT)])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro lint: 0 error(s)" in out

    def test_write_baseline_round_trip(self, capsys, tmp_path, monkeypatch):
        baseline = tmp_path / "baseline.json"
        code = main([
            "lint", "--root", str(REPO_ROOT),
            "--baseline", str(baseline), "--write-baseline",
        ])
        assert code == 0
        written = Baseline.load(baseline)
        assert written.entries == []  # clean tree -> empty baseline
