"""Engine-layer tests: AST helpers, suppressions, fingerprints, baseline."""

import ast
import json

import pytest

from repro.lint import Baseline, Finding, run_lint
from repro.lint.engine import (
    SourceFile,
    assign_fingerprints,
    dotted_name,
    receiver_parts,
    scan_suppressions,
)


def _file(source: str, rel: str = "src/repro/core/x.py") -> SourceFile:
    return SourceFile("/fake/" + rel, rel, source)


class TestSourceFile:
    def test_subpath_strips_src_prefix(self):
        assert _file("x = 1").subpath == "repro/core/x.py"
        assert _file("x = 1", rel="repro/core/x.py").subpath == "repro/core/x.py"

    def test_parent_links_cover_every_node(self):
        file = _file("def f():\n    return 1 + 2\n")
        for node in file.walk():
            if not isinstance(node, ast.Module):
                assert SourceFile.parent(node) is not None

    def test_in_loop_stops_at_function_boundary(self):
        file = _file(
            "for i in range(3):\n"
            "    def inner():\n"
            "        return i + 1\n"
        )
        binop = next(n for n in file.walk() if isinstance(n, ast.BinOp))
        # The BinOp is inside inner(), whose body is not loop-repeated work.
        assert SourceFile.in_loop(binop) is False

    def test_in_loop_true_for_comprehensions(self):
        file = _file("ys = [x + 1 for x in xs]\n")
        binop = next(n for n in file.walk() if isinstance(n, ast.BinOp))
        assert SourceFile.in_loop(binop) is True

    def test_guarded_by_enabled_if(self):
        file = _file(
            "def f(self):\n"
            "    if self.tracer.enabled:\n"
            "        self.tracer.count('x')\n"
        )
        call = next(n for n in file.walk() if isinstance(n, ast.Call))
        assert SourceFile.guarded_by_enabled(call) is True

    def test_guarded_by_early_bail(self):
        file = _file(
            "def f(self):\n"
            "    if not self.tracer.enabled:\n"
            "        return\n"
            "    self.tracer.count('x')\n"
        )
        call = next(n for n in file.walk() if isinstance(n, ast.Call))
        assert SourceFile.guarded_by_enabled(call) is True

    def test_unguarded(self):
        file = _file("def f(self):\n    self.tracer.count('x')\n")
        call = next(n for n in file.walk() if isinstance(n, ast.Call))
        assert SourceFile.guarded_by_enabled(call) is False


class TestAstHelpers:
    def test_dotted_name(self):
        node = ast.parse("a.b.c").body[0].value
        assert dotted_name(node) == "a.b.c"
        assert dotted_name(ast.parse("f()").body[0].value) is None

    def test_receiver_parts_unwraps_nested_calls(self):
        call = ast.parse("self.metrics.hist.hist('x').record(1.0)").body[0].value
        assert receiver_parts(call) == [
            "self", "metrics", "hist", "hist", "record",
        ]


class TestSuppressions:
    def test_inline_covers_its_line_and_standalone_covers_next(self):
        file = _file(
            "x = 1  # repro: ignore[RPR005] -- inline why\n"
            "# repro: ignore[RPR001] -- standalone why\n"
            "y = 2\n"
        )
        supps = scan_suppressions(file)
        assert [(s.line, s.codes, s.justification) for s in supps] == [
            (1, ("RPR005",), "inline why"),
            (3, ("RPR001",), "standalone why"),
        ]

    def test_docstring_examples_are_not_suppressions(self):
        file = _file(
            '"""Docs.\n\n    x = f()  # repro: ignore[RPR005] -- example\n"""\n'
        )
        assert scan_suppressions(file) == []

    def test_multi_code_comment(self):
        file = _file("x = 1  # repro: ignore[RPR001, RPR003] -- both\n")
        assert scan_suppressions(file)[0].codes == ("RPR001", "RPR003")


class TestFingerprints:
    def test_stable_across_line_churn(self):
        a = Finding("RPR001", "src/repro/sim/x.py", 10, 0, "m", "time.time()")
        b = Finding("RPR001", "src/repro/sim/x.py", 99, 4, "m", "time.time()")
        fa = assign_fingerprints([a])[0].fingerprint
        fb = assign_fingerprints([b])[0].fingerprint
        assert fa == fb

    def test_occurrence_index_disambiguates_duplicates(self):
        a = Finding("RPR001", "p.py", 1, 0, "m", "time.time()")
        b = Finding("RPR001", "p.py", 2, 0, "m", "time.time()")
        fps = [f.fingerprint for f in assign_fingerprints([a, b])]
        assert len(set(fps)) == 2


class TestBaseline:
    def test_round_trip(self, tmp_path, fixture_root):
        result = run_lint(fixture_root("rpr005"))
        assert result.errors
        path = tmp_path / "baseline.json"
        Baseline.from_findings(result.errors).write(path)
        again = run_lint(fixture_root("rpr005"), baseline=Baseline.load(path))
        assert again.errors == []
        assert len(again.baselined) == len(result.errors)
        assert again.exit_code(strict=True) == 0

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_stale_entries_fail_only_strict(self, tmp_path, fixture_root):
        path = tmp_path / "baseline.json"
        Baseline(
            [{"fingerprint": "feedfacefeedface", "rule": "RPR005",
              "path": "gone.py", "snippet": "", "justification": "old"}]
        ).write(path)
        result = run_lint(fixture_root("clean"), baseline=Baseline.load(path))
        assert result.errors == []
        stale_fps = [e["fingerprint"] for e in result.stale_baseline]
        assert stale_fps == ["feedfacefeedface"]
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1
