"""Per-rule fixture tests: every rule has positive and negative cases."""

from repro.lint import run_lint


def _by_rule(result, code):
    return [f for f in result.errors if f.rule == code]


class TestRPR001SimClockPurity:
    def test_flags_every_wall_clock_read_in_sim(self, fixture_root):
        result = run_lint(fixture_root("rpr001"))
        findings = _by_rule(result, "RPR001")
        assert len(findings) == 4  # import, from-import, time.time, datetime.now
        assert all(f.path.endswith("sim/clocky.py") for f in findings)

    def test_obs_may_read_wall_clock(self, fixture_root):
        result = run_lint(fixture_root("rpr001"))
        assert not any(f.path.endswith("obs/wall.py") for f in result.errors)


class TestRPR002FaultSiteCoverage:
    def test_flags_every_misuse(self, fixture_root):
        result = run_lint(fixture_root("rpr002"))
        findings = _by_rule(result, "RPR002")
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 5
        assert "outside the recovery ladder" in messages
        assert "'bogus' is not in the declared registry" in messages
        assert "FaultSite.BOGUS" in messages
        assert "attribution 'bogus'" in messages
        assert "not the string 'swap_in'" in messages

    def test_ladder_module_may_draw(self, fixture_root):
        result = run_lint(fixture_root("rpr002"))
        assert not any(
            f.path.endswith("faults/ladder.py") for f in result.errors
        )

    def test_registry_enum_drift_is_flagged(self, fixture_root):
        result = run_lint(fixture_root("rpr002_drift"))
        findings = _by_rule(result, "RPR002")
        assert len(findings) == 1
        assert "drifted" in findings[0].message


class TestRPR003HotPathAllocation:
    def test_flags_unguarded_allocating_calls(self, fixture_root):
        result = run_lint(fixture_root("rpr003"))
        findings = _by_rule(result, "RPR003")
        lines = sorted(f.line for f in findings)
        assert len(findings) == 3  # f-string, dict display, str() call
        assert all(f.path.endswith("core/hot.py") for f in findings)
        # The guarded / constant-arg / sim-trace variants are not flagged.
        flagged_snippets = {f.snippet for f in findings}
        assert not any("good_" in s for s in flagged_snippets)
        assert lines == sorted(set(lines))

    def test_bench_is_out_of_scope(self, fixture_root):
        result = run_lint(fixture_root("rpr003"))
        assert not any(f.path.endswith("bench/timers.py") for f in result.errors)


class TestRPR004LedgerNameSync:
    def test_both_directions_of_the_diff(self, fixture_root):
        result = run_lint(fixture_root("rpr004"))
        findings = _by_rule(result, "RPR004")
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 5
        assert "'typo_metric' is not declared" in messages
        assert "tier label 'tpu'" in messages
        assert "'bogus_event' is not declared" in messages
        assert "'dead_metric' is never recorded" in messages
        assert "SAMPLED_HISTOGRAMS" in messages

    def test_declared_and_recorded_names_pass(self, fixture_root):
        result = run_lint(fixture_root("rpr004"))
        assert not any(
            "latency_seconds" in f.message or "admit" in f.message
            for f in _by_rule(result, "RPR004")
        )


class TestRPR005KernelCopySmell:
    def test_flags_copies_inside_loops(self, fixture_root):
        result = run_lint(fixture_root("rpr005"))
        findings = _by_rule(result, "RPR005")
        assert len(findings) == 3  # ascontiguousarray, .copy(), comprehension
        assert all(f.path.endswith("kernels/k.py") for f in findings)

    def test_hoisted_copies_pass(self, fixture_root):
        result = run_lint(fixture_root("rpr005"))
        assert not any(
            "good_hoisted" in f.snippet for f in _by_rule(result, "RPR005")
        )


class TestRPR006BackendKernelRouting:
    def test_flags_direct_kernel_imports_outside_backends(self, fixture_root):
        result = run_lint(fixture_root("rpr006"))
        findings = _by_rule(result, "RPR006")
        # two names on the package import, one ring import, one dotted ref
        assert len(findings) == 4
        assert all(f.path.endswith("model/hardwired.py") for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "multi_token_attention" in messages
        assert "packed_decode_attention" in messages
        assert "ring_decode_attention" in messages
        assert "repro.kernels.segment_masked_decode" in messages

    def test_types_and_helpers_are_importable_anywhere(self, fixture_root):
        result = run_lint(fixture_root("rpr006"))
        assert not any(
            f.path.endswith("model/good_types.py") for f in result.errors
        )

    def test_backends_and_bench_are_exempt(self, fixture_root):
        result = run_lint(fixture_root("rpr006"))
        assert not any(
            f.path.endswith("backends/good_backend.py")
            or f.path.endswith("bench/good_bench.py")
            for f in result.errors
        )

    def test_justified_suppression_is_honoured(self, fixture_root):
        result = run_lint(fixture_root("rpr006"))
        assert not any(
            f.path.endswith("experiments/suppressed.py") for f in result.errors
        )
        assert any(
            f.rule == "RPR006" and f.path.endswith("experiments/suppressed.py")
            for f, _ in result.suppressed
        )


class TestSuppressionPolicy:
    def test_justified_suppression_silences_finding(self, fixture_root):
        result = run_lint(fixture_root("suppress"))
        suppressed_rules = [f.rule for f, _ in result.suppressed]
        assert suppressed_rules.count("RPR005") == 2
        assert not _by_rule(result, "RPR005")

    def test_bare_and_stale_suppressions_are_errors(self, fixture_root):
        result = run_lint(fixture_root("suppress"))
        engine_findings = _by_rule(result, "RPR000")
        messages = " | ".join(f.message for f in engine_findings)
        assert len(engine_findings) == 2
        assert "lacks a justification" in messages
        assert "matched no finding" in messages


class TestCleanTree:
    def test_clean_fixture_has_no_findings(self, fixture_root):
        result = run_lint(fixture_root("clean"))
        assert result.errors == []
        assert result.suppressed == []
        assert result.exit_code(strict=True) == 0
