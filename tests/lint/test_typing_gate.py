"""The typed-core gate, run locally when mypy is importable.

CI installs mypy in the lint-smoke job and runs ``mypy -p repro`` with
the pyproject configuration (strict on ``repro.sim``, ``repro.faults``
and ``repro.obs.histogram``); this test runs the identical check so the
gate is reproducible on a dev box, and skips — rather than fails — where
mypy is not installed (the pinned test image ships without it).
"""

import subprocess
import sys

import pytest

from tests.lint.conftest import REPO_ROOT

pytest.importorskip("mypy", reason="mypy not installed; CI runs this gate")


@pytest.mark.slow
def test_typed_core_passes_mypy():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
