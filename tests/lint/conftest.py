"""Shared helpers for the lint-framework tests."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def fixture_root():
    def _root(name: str) -> str:
        path = FIXTURES / name
        assert path.is_dir(), f"missing fixture tree {name}"
        return str(path)

    return _root
