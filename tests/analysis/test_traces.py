"""Tests for trace-derived statistics."""

import pytest

from repro.analysis import (
    batch_occupancy,
    cache_summary,
    pcie_utilization,
    turn_latency_breakdown,
)
from repro.core import PensieveEngine
from repro.gpu import PcieEngine
from repro.serving import make_vllm

from tests.serving.conftest import TINY, scripted_conversation, serve, spec_with_capacity


def pensieve(loop):
    return PensieveEngine(
        loop, TINY, spec_with_capacity(2048), keep_trace=True
    )


class TestCacheSummary:
    def test_multi_turn_hits(self):
        engine, _, _ = serve(
            pensieve, [scripted_conversation(0, [(10, 10), (5, 5), (3, 4)])]
        )
        summary = cache_summary(engine)
        assert summary.lookup_tokens > 0
        assert summary.hit_rate == 1.0  # abundant memory: everything hits
        assert summary.recompute_rate == 0.0
        assert "hit_rate" in summary.as_dict()

    def test_empty_run_degenerates_gracefully(self):
        engine, _, _ = serve(pensieve, [scripted_conversation(0, [(5, 3)])])
        summary = cache_summary(engine)
        # Single turn: nothing was ever looked up.
        assert summary.lookup_tokens == 0
        assert summary.hit_rate == 1.0
        assert summary.cpu_hit_rate == 0.0

    def test_stateless_engine_has_no_summary(self):
        engine, _, _ = serve(
            lambda loop: make_vllm(loop, TINY, spec_with_capacity(512)),
            [scripted_conversation(0, [(5, 3)])],
        )
        with pytest.raises(AttributeError):
            cache_summary(engine)


class TestBatchOccupancy:
    def test_occupancy_statistics(self):
        convs = [scripted_conversation(i, [(8, 20)]) for i in range(4)]
        engine, _, _ = serve(pensieve, convs)
        occ = batch_occupancy(engine)
        assert occ.iterations == engine.iterations
        assert 1 <= occ.mean_batch <= 4
        assert occ.max_batch <= 4
        assert occ.mean_duration > 0
        assert occ.as_dict()["iterations"] == occ.iterations

    def test_requires_trace(self):
        engine, _, _ = serve(
            lambda loop: PensieveEngine(
                loop, TINY, spec_with_capacity(512), keep_trace=False
            ),
            [scripted_conversation(0, [(5, 3)])],
        )
        with pytest.raises((ValueError, RuntimeError)):
            batch_occupancy(engine)


class TestPcieUtilization:
    def test_busy_fractions(self):
        pcie = PcieEngine(bandwidth=1e9, min_latency=0.0)
        pcie.swap_in(0.0, 1e9)   # 1 s busy
        pcie.swap_out(5.0, 2e9)  # 2 s busy
        stats = pcie_utilization(pcie, duration=10.0)
        assert stats["h2d_busy_fraction"] == pytest.approx(0.1)
        assert stats["d2h_busy_fraction"] == pytest.approx(0.2)
        assert stats["h2d_gbytes"] == pytest.approx(1.0)
        assert stats["transfers"] == 2

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            pcie_utilization(PcieEngine(bandwidth=1e9), duration=0.0)


class TestTurnBreakdown:
    def test_per_turn_rows(self):
        convs = [
            scripted_conversation(i, [(10, 10), (5, 5), (3, 4)])
            for i in range(3)
        ]
        engine, _, _ = serve(pensieve, convs)
        breakdown = turn_latency_breakdown(engine.metrics.records)
        assert set(breakdown) == {0, 1, 2}
        assert breakdown[0]["count"] == 3
        # History grows with turn index.
        assert breakdown[2]["mean_history"] > breakdown[1]["mean_history"] > 0

    def test_stateless_prefill_grows_with_turns(self):
        convs = [scripted_conversation(0, [(10, 10), (5, 5), (3, 4)])]
        engine, _, _ = serve(
            lambda loop: make_vllm(loop, TINY, spec_with_capacity(512)), convs
        )
        breakdown = turn_latency_breakdown(engine.metrics.records)
        assert (
            breakdown[2]["mean_prefilled"]
            > breakdown[1]["mean_prefilled"]
            > breakdown[0]["mean_prefilled"]
        )
