"""Tests for the ASCII plotting canvas."""

import pytest

from repro.analysis.ascii_plot import AsciiCanvas, plot_curves
from repro.experiments.common import RatePoint


class TestCanvas:
    def test_renders_points_and_axes(self):
        canvas = AsciiCanvas(width=20, height=6)
        canvas.add_series("a", [(0, 0), (1, 1)])
        text = canvas.render(title="T", x_label="x", y_label="y")
        assert "T" in text
        assert "*" in text
        assert "*=a" in text
        assert "x: x" in text

    def test_multiple_series_get_distinct_glyphs(self):
        canvas = AsciiCanvas(width=20, height=6)
        canvas.add_series("a", [(0, 0), (1, 1)])
        canvas.add_series("b", [(0, 1), (1, 0)])
        text = canvas.render()
        assert "*=a" in text and "o=b" in text

    def test_explicit_glyph(self):
        canvas = AsciiCanvas(width=20, height=6)
        canvas.add_series("a", [(0, 0)], glyph="Q")
        assert "Q=a" in canvas.render()

    def test_degenerate_ranges_handled(self):
        canvas = AsciiCanvas(width=20, height=6)
        canvas.add_series("flat", [(1, 5), (2, 5), (3, 5)])
        assert canvas.render()  # no ZeroDivisionError

    def test_corner_points_land_on_extremes(self):
        canvas = AsciiCanvas(width=21, height=7)
        canvas.add_series("a", [(0, 0), (10, 10)])
        rows = canvas.render().split("\n")
        data_rows = [r for r in rows if "|" in r]
        assert data_rows[0].rstrip().endswith("*")   # top-right
        assert data_rows[-1].split("|")[1][0] == "*"  # bottom-left

    def test_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(width=5, height=2)
        canvas = AsciiCanvas(width=20, height=6)
        with pytest.raises(ValueError):
            canvas.add_series("empty", [])
        with pytest.raises(ValueError):
            canvas.render()


class TestPlotCurves:
    def test_rate_points(self):
        def pt(rate, thr, lat):
            return RatePoint(rate, thr, lat, lat * 1.4, 10, {})

        curves = {
            "vLLM": [pt(1, 1.0, 0.03), pt(4, 3.0, 0.3)],
            "Pensieve": [pt(1, 1.0, 0.028), pt(4, 3.8, 0.1)],
        }
        text = plot_curves(curves, title="Figure 10")
        assert "Figure 10" in text
        assert "*=vLLM" in text and "o=Pensieve" in text
