"""Tests for curve-comparison helpers."""

import pytest

from repro.analysis import crossover_rate, curve_dominates, speedup_at
from repro.experiments.common import RatePoint


def point(rate, thr, mean):
    return RatePoint(
        request_rate=rate,
        throughput_rps=thr,
        mean_norm_latency=mean,
        p90_norm_latency=mean * 1.4,
        num_requests=10,
        extras={},
    )


FAST = [point(1, 1.0, 0.03), point(2, 2.0, 0.04), point(4, 3.5, 0.10)]
SLOW = [point(1, 1.0, 0.03), point(2, 2.0, 0.05), point(4, 3.0, 0.30)]


class TestSpeedupAt:
    def test_basic(self):
        assert speedup_at(FAST, SLOW, 0.10) > 1.0

    def test_infinite_when_loser_never_meets_target(self):
        assert speedup_at(FAST, SLOW, 0.02) == float("inf") or speedup_at(
            FAST, SLOW, 0.02
        ) >= 0  # both violate -> inf or 0/0 handled


class TestDominates:
    def test_fast_dominates_slow(self):
        assert curve_dominates(FAST, SLOW)
        assert not curve_dominates(SLOW, FAST)

    def test_tolerance(self):
        near = [point(1, 1.0, 0.031), point(2, 2.0, 0.04), point(4, 3.4, 0.10)]
        assert not curve_dominates(near, FAST)
        assert curve_dominates(near, FAST, tolerance=0.05)

    def test_disjoint_rates_rejected(self):
        other = [point(8, 4.0, 0.2)]
        with pytest.raises(ValueError):
            curve_dominates(FAST, other)


class TestCrossover:
    def test_finds_first_divergence(self):
        # Latencies equal at rate 1, diverge >2% from rate 2 on.
        assert crossover_rate(FAST, SLOW) == 2

    def test_none_when_equal(self):
        assert crossover_rate(FAST, FAST) is None

    def test_min_gap_filters_noise(self):
        nearly = [point(1, 1.0, 0.03), point(2, 2.0, 0.041), point(4, 3.5, 0.101)]
        assert crossover_rate(FAST, nearly, min_gap=0.10) is None
