"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("chat", "simulate", "sweep", "figures", "bench", "report"):
            args = parser.parse_args(
                [command] if command != "report" else [command, "--output", "x.md"]
            )
            assert args.command == command

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.output == "BENCH_kernels.json"
        assert args.quick is False
        assert args.repeats is None
        assert args.decode_sched == "page-aware"
        assert args.packing_cache == "on"

    def test_sched_flags_on_every_serving_command(self):
        parser = build_parser()
        for command, default in (
            ("chat", "page-aware"),
            ("simulate", "fifo"),
            ("sweep", "fifo"),
            ("bench", "page-aware"),
        ):
            args = parser.parse_args([command])
            assert args.decode_sched == default
            assert args.packing_cache == "on"
            args = parser.parse_args(
                [command, "--decode-sched", "fifo", "--packing-cache", "off"]
            )
            assert args.decode_sched == "fifo"
            assert args.packing_cache == "off"

    def test_invalid_sched_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--decode-sched", "lifo"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--model", "gpt-5", "--duration", "5"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--system", "orca", "--duration", "5"])


class TestSimulate:
    def test_simulate_pensieve(self, capsys):
        rc = main(
            [
                "simulate", "--system", "pensieve", "--model", "opt-13b",
                "--rate", "2", "--duration", "40", "--seed", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pensieve" in out
        assert "throughput_rps" in out
        assert "cache" in out

    def test_page_aware_simulate_runs(self, capsys):
        rc = main(
            [
                "simulate", "--system", "pensieve", "--model", "opt-13b",
                "--rate", "2", "--duration", "40", "--seed", "3",
                "--decode-sched", "page-aware", "--packing-cache", "off",
            ]
        )
        assert rc == 0
        assert "Pensieve" in capsys.readouterr().out

    def test_page_aware_rejected_for_stateless_systems(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "--system", "vllm", "--duration", "5",
                    "--decode-sched", "page-aware",
                ]
            )

    def test_explicit_backend_rejected_for_stateless_systems(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "--system", "vllm", "--duration", "5",
                    "--backend", "paged-ring",
                ]
            )

    def test_env_backend_quietly_skips_stateless_systems(
        self, capsys, monkeypatch
    ):
        # REPRO_BACKEND is a process-wide default (CI runs the whole
        # tier-1 matrix under it); the stateless baselines model no KV
        # backend, so the env default must not hard-fail on them the way
        # an explicit --backend flag does.
        monkeypatch.setenv("REPRO_BACKEND", "paged-ring")
        rc = main(
            [
                "simulate", "--system", "vllm", "--model", "opt-13b",
                "--rate", "2", "--duration", "40",
            ]
        )
        assert rc == 0
        assert "vLLM" in capsys.readouterr().out

    def test_simulate_vllm_has_no_cache_line(self, capsys):
        rc = main(
            [
                "simulate", "--system", "vllm", "--model", "opt-13b",
                "--rate", "2", "--duration", "40",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "vLLM" in out
        assert "cache         :" not in out

    def test_fault_seed_arms_injection(self, capsys):
        rc = main(
            [
                "simulate", "--system", "pensieve", "--model", "opt-13b",
                "--rate", "2", "--duration", "40", "--seed", "3",
                "--fault-seed", "11", "--fault-rate", "0.05",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults        :" in out
        assert "retries" in out
        assert "degraded      :" in out

    def test_no_fault_seed_no_fault_lines(self, capsys):
        rc = main(
            [
                "simulate", "--system", "pensieve", "--model", "opt-13b",
                "--rate", "2", "--duration", "40", "--seed", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults        :" not in out

    def test_fault_seed_rejected_for_stateless_systems(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "--system", "vllm", "--model", "opt-13b",
                    "--rate", "2", "--duration", "20", "--fault-seed", "1",
                ]
            )

    def test_model_name_normalisation(self, capsys):
        rc = main(
            [
                "simulate", "--system", "pensieve", "--model", "LLAMA2-13B",
                "--rate", "2", "--duration", "30",
            ]
        )
        assert rc == 0
        assert "Llama 2-13B" in capsys.readouterr().out


class TestSweep:
    def test_sweep_prints_curve(self, capsys):
        rc = main(
            [
                "sweep", "--system", "tensorrt-llm", "--model", "opt-13b",
                "--rates", "1", "2", "--duration", "40",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tensorrt-llm / OPT-13B" in out
        assert "thr(req/s)" in out


@pytest.mark.slow
class TestBench:
    def test_quick_bench_writes_json_and_passes(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_kernels.json"
        rc = main(
            ["bench", "--quick", "--repeats", "1", "--output", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "decode/" in out and "e2e/" in out
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["all_equivalent"] is True
        assert payload["quick"] is True
        assert all(x["equivalent"] for x in payload["results"])

    def test_empty_output_skips_writing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["bench", "--quick", "--repeats", "1", "--output", ""])
        assert rc == 0
        assert not list(tmp_path.iterdir())


class TestFigures:
    def test_figures_prints_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for label in ("Figure 3", "Figure 4", "Figure 12", "Table 2"):
            assert label in out


class TestTrace:
    def test_trace_simulate_writes_artifacts(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "traces"
        rc = main(
            [
                "trace", "simulate", "--rate", "2", "--duration", "40",
                "--seed", "3", "--out", str(out_dir),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput_rps" in out
        chrome = json.loads((out_dir / "trace_simulate.chrome.json").read_text())
        events = chrome["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "request" for e in events)
        for event in events:
            assert "ph" in event and "ts" in event and "pid" in event
        jsonl = (out_dir / "trace_simulate.jsonl").read_text().splitlines()
        assert all(json.loads(line) for line in jsonl)
        assert (out_dir / "trace_simulate.txt").read_text().startswith(
            "== trace report =="
        )

    def test_simulate_trace_out_flag(self, capsys, tmp_path):
        out_dir = tmp_path / "t"
        rc = main(
            [
                "simulate", "--system", "pensieve", "--model", "opt-13b",
                "--rate", "2", "--duration", "30", "--seed", "3",
                "--trace-out", str(out_dir),
            ]
        )
        assert rc == 0
        assert (out_dir / "trace_simulate.chrome.json").exists()
        assert (out_dir / "trace_simulate.jsonl").exists()

    @pytest.mark.slow
    def test_bench_trace_out_flag(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "b"
        rc = main(
            [
                "bench", "--quick", "--repeats", "1",
                "--output", str(tmp_path / "bench.json"),
                "--trace-out", str(out_dir),
            ]
        )
        assert rc == 0
        chrome = json.loads((out_dir / "trace_bench.chrome.json").read_text())
        names = {
            e["name"] for e in chrome["traceEvents"] if e["ph"] == "X"
        }
        assert any(name.startswith("bench.") for name in names)


class TestObservabilityCli:
    def test_slo_flags_on_serving_commands(self):
        parser = build_parser()
        for command in ("chat", "simulate", "sweep"):
            args = parser.parse_args([command])
            assert args.slo_ttft is None
            assert args.slo_tbt is None
            assert args.metrics_out is None
            args = parser.parse_args(
                [command, "--slo-ttft", "0.5", "--slo-tbt", "0.1",
                 "--metrics-out", "m"]
            )
            assert args.slo_ttft == 0.5
            assert args.slo_tbt == 0.1
            assert args.metrics_out == "m"

    def test_metrics_command_registered(self):
        args = build_parser().parse_args(["metrics"])
        assert args.command == "metrics"
        assert args.out == "metrics"
        assert args.slo_ttft is None and args.slo_tbt is None

    def test_bench_check_history_flag(self):
        assert build_parser().parse_args(["bench"]).check_history is False
        assert build_parser().parse_args(
            ["bench", "--check-history"]
        ).check_history is True

    def test_trace_summary_flags(self):
        args = build_parser().parse_args(["trace", "simulate"])
        assert args.summary is False and args.top == 10
        args = build_parser().parse_args(
            ["trace", "simulate", "--summary", "--top", "3"]
        )
        assert args.summary is True and args.top == 3

    def test_simulate_with_slo_writes_metrics_artifacts(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "m"
        rc = main(
            [
                "simulate", "--system", "pensieve", "--model", "opt-13b",
                "--rate", "2", "--duration", "40", "--seed", "3",
                "--slo-ttft", "0.5", "--slo-tbt", "0.2",
                "--metrics-out", str(out_dir),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "slo violations" in out or "flight capture" in out
        from repro.obs import parse_prometheus

        prom_text = (out_dir / "metrics.prom").read_text()
        parsed = parse_prometheus(prom_text)  # must not raise
        assert "repro_requests_completed_total" in parsed
        assert any(name.startswith("repro_ledger_") for name in parsed)
        jsonl = (out_dir / "metrics.jsonl").read_text().splitlines()
        assert json.loads(jsonl[0])["format"] == "repro-metrics-jsonl"
        assert (out_dir / "metrics_captures.jsonl").exists()

    def test_metrics_command_round_trips_snapshot(self, capsys, tmp_path):
        out_dir = tmp_path / "metrics"
        rc = main(
            [
                "metrics", "--rate", "2", "--duration", "40", "--seed", "3",
                "--slo-ttft", "0.2", "--out", str(out_dir),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "snapshot parses:" in out
        assert (out_dir / "metrics.prom").exists()
        assert (out_dir / "metrics.jsonl").exists()

    def test_trace_summary_prints_aggregate(self, capsys, tmp_path):
        rc = main(
            [
                "trace", "simulate", "--rate", "2", "--duration", "30",
                "--seed", "3", "--summary", "--top", "3",
                "--out", str(tmp_path / "t"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== span summary ==" in out
        assert "per-span-name aggregate" in out

    @pytest.mark.slow
    def test_bench_check_history_is_non_gating(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_kernels.json"
        # Seed a ledger whose baselines dwarf any real run: every family
        # regresses, yet the command still exits 0 (non-gating).
        history = [
            {"summary": {key: 1000.0 for key in (
                "decode_kernel_best_speedup", "prefill_kernel_best_speedup",
                "mixed_kernel_best_speedup", "e2e_best_speedup",
                "swap_best_speedup", "disk_best_speedup",
                "idle_restore_speedup", "packing_best_speedup",
                "decode_sched_speedup",
            )}}
            for _ in range(5)
        ]
        out_path.write_text(json.dumps({"history": history}))
        rc = main(
            ["bench", "--quick", "--repeats", "1", "--check-history",
             "--output", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench history watchdog" in out
        assert "overall: FAIL" in out
        assert "non-gating" in out
