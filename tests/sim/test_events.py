"""Tests for the discrete-event loop."""

import pytest

from repro.sim import EventLoop, SimulationError


def test_runs_events_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(2.0, order.append, "b")
    loop.schedule(1.0, order.append, "a")
    loop.schedule(3.0, order.append, "c")
    loop.run()
    assert order == ["a", "b", "c"]
    assert loop.now == 3.0


def test_same_time_events_run_fifo():
    loop = EventLoop()
    order = []
    for tag in "abcde":
        loop.schedule(1.0, order.append, tag)
    loop.run()
    assert order == list("abcde")


def test_callbacks_can_schedule_more_events():
    loop = EventLoop()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            loop.schedule_after(1.0, chain, n + 1)

    loop.schedule(0.0, chain, 1)
    loop.run()
    assert seen == [1, 2, 3, 4, 5]
    assert loop.now == 4.0


def test_run_until_stops_and_advances_clock():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, seen.append, 1)
    loop.schedule(5.0, seen.append, 5)
    loop.run(until=2.0)
    assert seen == [1]
    assert loop.now == 2.0
    loop.run()
    assert seen == [1, 5]


def test_cancelled_events_are_skipped():
    loop = EventLoop()
    seen = []
    event = loop.schedule(1.0, seen.append, "cancelled")
    loop.schedule(2.0, seen.append, "kept")
    event.cancel()
    loop.run()
    assert seen == ["kept"]


def test_scheduling_in_the_past_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule(0.5, lambda: None)


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule_after(-0.1, lambda: None)


def test_max_events_guard():
    loop = EventLoop()

    def forever():
        loop.schedule_after(0.0, forever)

    loop.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


def test_pending_and_dispatched_counters():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    assert loop.pending == 2
    dispatched = loop.run()
    assert dispatched == 2
    assert loop.dispatched == 2
    assert loop.pending == 0


def test_run_is_not_reentrant():
    loop = EventLoop()
    errors = []

    def reenter():
        try:
            loop.run()
        except SimulationError as exc:
            errors.append(exc)

    loop.schedule(0.0, reenter)
    loop.run()
    assert len(errors) == 1
