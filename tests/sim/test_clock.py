"""Tests for the simulated clock."""

import pytest

from repro.sim import Clock


def test_starts_at_zero():
    assert Clock().now == 0.0


def test_starts_at_custom_time():
    assert Clock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        Clock(-1.0)


def test_advance_forward():
    clock = Clock()
    clock.advance_to(3.5)
    assert clock.now == 3.5
    clock.advance_to(3.5)  # advancing to the same time is allowed
    assert clock.now == 3.5


def test_advance_backwards_rejected():
    clock = Clock(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(9.999)


def test_repr_mentions_time():
    assert "2.5" in repr(Clock(2.5))
