"""Tests for the trace recorder."""

from repro.sim import TraceRecorder


def test_counts_by_kind():
    rec = TraceRecorder()
    rec.record(0.0, "batch", tokens=10)
    rec.record(1.0, "batch", tokens=20)
    rec.record(1.5, "swap_in", bytes=100)
    assert rec.count("batch") == 2
    assert rec.count("swap_in") == 1
    assert rec.count("missing") == 0
    assert len(rec) == 3


def test_numeric_payloads_accumulate():
    rec = TraceRecorder()
    rec.record(0.0, "batch", tokens=10, label="x")
    rec.record(1.0, "batch", tokens=32)
    assert rec.total("batch", "tokens") == 42
    assert rec.total("batch", "nothing") == 0


def test_bool_payloads_not_summed():
    rec = TraceRecorder()
    rec.record(0.0, "evt", flag=True)
    assert rec.total("evt", "flag") == 0


def test_event_filtering():
    rec = TraceRecorder()
    rec.record(0.0, "a", v=1)
    rec.record(1.0, "b", v=2)
    rec.record(2.0, "a", v=3)
    assert [e.data["v"] for e in rec.events("a")] == [1, 3]
    assert len(list(rec.events())) == 3


def test_disabled_storage_keeps_aggregates():
    rec = TraceRecorder(keep_events=False)
    rec.record(0.0, "batch", tokens=5)
    rec.record(1.0, "batch", tokens=7)
    assert rec.count("batch") == 2
    assert rec.total("batch", "tokens") == 12


def test_clear():
    rec = TraceRecorder()
    rec.record(0.0, "a", v=1)
    rec.clear()
    assert len(rec) == 0
    assert rec.count("a") == 0
