"""Chaos tests: the serving simulation under seeded fault schedules.

The simulated Pensieve engine must keep scheduling through injected
PCIe-transfer failures, transient allocation faults, host-side
corruption and multi-GPU worker stalls: recoverable faults cost
simulated time (retries, recompute) but never correctness, and terminal
faults degrade individual requests while the batch keeps running.
"""

import dataclasses

import pytest

from repro.core.engine import PensieveEngine
from repro.experiments.common import run_serving_once
from repro.faults import FaultPlan, FaultSite, RetryPolicy
from repro.gpu.device import A100_80GB
from repro.model.config import PAPER_MODELS
from repro.serving.request import RequestState
from repro.workload.dataset import SHAREGPT, generate_workload

CHAOS_SEEDS = [0, 1, 2]

RATES = {
    FaultSite.SWAP_IN: 0.15,
    FaultSite.SWAP_OUT: 0.15,
    FaultSite.GPU_ALLOC: 0.05,
    FaultSite.CPU_READ: 0.1,
    FaultSite.WORKER_STEP: 0.02,
}


def pressured_spec(config, gpu_tokens=4096, cpu_tokens=16384):
    """Shrink the KV reservation so swapping actually happens."""
    kv = config.kv_bytes_per_token
    return dataclasses.replace(
        A100_80GB,
        kv_cache_bytes=gpu_tokens * kv,
        cpu_memory_bytes=cpu_tokens * kv,
    )


def run_chaotic(config, plan, spec=None, rate=6.0, duration=60.0, **engine_kwargs):
    spec = spec or pressured_spec(config)
    conversations = generate_workload(
        SHAREGPT,
        request_rate=rate,
        duration=duration,
        think_time_mean=10.0,
        seed=7,
    )
    return run_serving_once(
        lambda loop: PensieveEngine(
            loop, config, spec, fault_plan=plan, **engine_kwargs
        ),
        conversations,
        until=duration,
        warmup=duration * 0.2,
    )


class TestEngineUnderFaults:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_run_completes_and_audit_holds(self, seed):
        config = PAPER_MODELS["OPT-13B"]
        plan = FaultPlan(seed=seed, rates=RATES)
        engine, stats = run_chaotic(config, plan)
        assert stats.num_requests > 0
        assert plan.total_fired > 0
        engine.manager._audit()

    def test_faults_cost_time_not_throughput_collapse(self):
        config = PAPER_MODELS["OPT-13B"]
        quiet_engine, quiet = run_chaotic(config, FaultPlan.quiet())
        chaotic_engine, chaotic = run_chaotic(
            config, FaultPlan(seed=3, rates=RATES)
        )
        assert chaotic_engine.metrics.faults.total > 0
        # Recoverable faults degrade latency/throughput, within reason.
        assert chaotic.num_requests >= 0.5 * quiet.num_requests
        assert quiet_engine.metrics.faults.total == 0

    def test_swap_sites_fire_under_pressure(self):
        config = PAPER_MODELS["OPT-13B"]
        plan = FaultPlan(seed=3, rates=RATES)
        engine, _ = run_chaotic(config, plan)
        counters = engine.metrics.faults
        assert counters.swap_out_failures > 0
        assert counters.retries > 0
        engine.manager._audit()

    def test_worker_stalls_only_with_multiple_gpus(self):
        single = PAPER_MODELS["OPT-13B"]   # 1 GPU
        multi = PAPER_MODELS["OPT-66B"]    # tensor-parallel
        assert multi.num_gpus > 1
        stall_rates = {FaultSite.WORKER_STEP: 0.1}
        engine_1, _ = run_chaotic(single, FaultPlan(seed=0, rates=stall_rates))
        engine_n, _ = run_chaotic(
            multi, FaultPlan(seed=0, rates=stall_rates),
            spec=pressured_spec(multi),
        )
        assert engine_1.metrics.faults.worker_stalls == 0
        assert engine_n.metrics.faults.worker_stalls > 0

    def test_terminal_alloc_degrades_requests_individually(self):
        config = PAPER_MODELS["OPT-13B"]
        # Allocation faults with no retry budget: the per-token gate means
        # some requests fail individually while most still finish.
        plan = FaultPlan(seed=5, rates={FaultSite.GPU_ALLOC: 0.005})
        engine, stats = run_chaotic(
            config,
            plan,
            retry_policy=RetryPolicy(max_retries=0),
        )
        assert engine.num_failed > 0
        assert engine.metrics.faults.degraded_requests == engine.num_failed
        assert all(r.state is RequestState.FAILED for r in engine.failed)
        assert stats.num_requests > 0  # the batch kept going
        engine.manager._audit()
        # Failed requests are out of the scheduler entirely.
        failed_ids = {r.request_id for r in engine.failed}
        assert failed_ids.isdisjoint({r.request_id for r in engine.running})

    def test_deterministic_given_seed(self):
        config = PAPER_MODELS["OPT-13B"]
        runs = []
        for _ in range(2):
            plan = FaultPlan(seed=9, rates=RATES)
            engine, stats = run_chaotic(config, plan)
            runs.append(
                (stats.num_requests, engine.metrics.faults.as_dict(), engine.num_failed)
            )
        assert runs[0] == runs[1]
