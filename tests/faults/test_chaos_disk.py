"""Chaos tests for the disk tier: three-tier server under fault schedules.

Differential acceptance bar, extending ``test_chaos_server.py`` to the
third tier: a three-tier server with tight GPU *and* CPU memory — so
context is routinely demoted to disk and read back — must produce greedy
outputs bit-identical to a fault-free two-tier server with abundant
memory.  That must hold fault-free (the tier is transparent), under
recoverable disk faults (NVMe stalls retry, checksum-detected disk
corruption falls back to §4.3.4 recompute), and under terminal NVMe
failures (the disk prefix degrades to recompute, never to wrong tokens).
"""

import pytest

from repro.core.server import StatefulChatServer
from repro.faults import FaultPlan, FaultSite
from repro.model.config import tiny_llama_config, tiny_opt_config
from tests.faults.test_chaos_server import (
    CHAOS_SEEDS,
    RECOVERABLE_RATES,
    drive,
    reference_outputs,
)

# The two-tier recoverable menu plus both disk-tier sites.
DISK_RATES = dict(RECOVERABLE_RATES)
DISK_RATES.update({FaultSite.DISK_READ: 0.3, FaultSite.NVME_STALL: 0.4})

TIGHT = dict(
    gpu_capacity_tokens=192,
    cpu_capacity_tokens=96,
    disk_capacity_tokens=4096,
    chunk_size=16,
    page_size=8,
)


def tight_server(config, **kwargs):
    params = dict(TIGHT, seed=0)
    params.update(kwargs)
    return StatefulChatServer(config, **params)


def assert_disk_was_exercised(server, allow_faulted_reads=False):
    """The workload demoted context to disk and restores touched it.

    With ``allow_faulted_reads``, a run whose every disk read was faulted
    (corrupted or terminally stalled) before promotion still counts — the
    reads happened, they just all fell back to recompute.
    """
    stats = server.manager.stats
    assert stats["demoted_tokens"] > 0, "workload never reached the disk tier"
    read_back = stats["disk_hit_tokens"] > 0
    if allow_faulted_reads:
        fc = server.fault_counters
        read_back = read_back or fc.corrupted_chunks > 0 or fc.disk_read_failures > 0
    assert read_back, "no restore ever read the disk tier"


class TestTransparentTier:
    def test_fault_free_three_tier_matches_two_tier(self):
        """With no faults at all, squeezing context through the disk tier
        must be invisible in the outputs."""
        config = tiny_llama_config()
        ref = reference_outputs(config)
        server = tight_server(config)
        assert drive(server, config) == ref
        assert_disk_was_exercised(server)


class TestDifferentialUnderDiskFaults:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_outputs_identical_under_recoverable_disk_faults(self, seed):
        config = tiny_llama_config()
        ref = reference_outputs(config)
        plan = FaultPlan(seed=seed, rates=DISK_RATES)
        server = tight_server(config, fault_plan=plan)
        assert drive(server, config) == ref
        assert plan.total_fired > 0
        assert server.fault_counters.degraded_requests == 0
        assert_disk_was_exercised(server, allow_faulted_reads=True)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_opt_architecture_identical_too(self, seed):
        config = tiny_opt_config()
        ref = reference_outputs(config, turns=6, convs=3)
        plan = FaultPlan(seed=seed, rates=DISK_RATES)
        server = tight_server(config, fault_plan=plan)
        assert drive(server, config, turns=6, convs=3) == ref
        assert server.fault_counters.degraded_requests == 0

    def test_terminal_nvme_stall_falls_back_to_recompute(self):
        """Exhausting the NVMe retry budget invalidates the disk prefix
        and recomputes it — degraded latency, identical tokens."""
        config = tiny_llama_config()
        ref = reference_outputs(config)
        # Default RetryPolicy allows 3 retries: four consecutive draws
        # make the first disk read terminally fail.
        plan = FaultPlan(seed=0, schedules={FaultSite.NVME_STALL: (0, 1, 2, 3)})
        server = tight_server(config, fault_plan=plan)
        assert drive(server, config) == ref
        assert server.fault_counters.disk_read_failures == 1
        assert server.fault_counters.recompute_fallbacks >= 1
        assert server.fault_counters.degraded_requests == 0
        assert_disk_was_exercised(server)


class TestDiskCorruptionRecovery:
    def test_checksum_detects_and_recovers(self):
        """Corrupt disk chunks are reported, counted, and recovered via
        recompute — never silently served."""
        config = tiny_llama_config()
        ref = reference_outputs(config)
        plan = FaultPlan(seed=2, rates={FaultSite.DISK_READ: 0.5})
        server = tight_server(config, fault_plan=plan)
        assert drive(server, config) == ref
        assert server.fault_counters.corrupted_chunks > 0
        assert server.fault_counters.recompute_fallbacks > 0
        assert server.fault_counters.degraded_requests == 0
        assert_disk_was_exercised(server)

    def test_mixed_cpu_and_disk_corruption(self):
        """Corruption on both stored tiers at once still recovers to
        bit-identical outputs (the recompute prefix covers whichever
        corrupt chunk sits lowest in the sequence)."""
        config = tiny_llama_config()
        ref = reference_outputs(config)
        plan = FaultPlan(
            seed=5,
            rates={FaultSite.CPU_READ: 0.4, FaultSite.DISK_READ: 0.4},
        )
        server = tight_server(config, fault_plan=plan)
        assert drive(server, config) == ref
        assert server.fault_counters.corrupted_chunks > 0
        assert server.fault_counters.degraded_requests == 0
