"""Chaos tests: the functional server under seeded fault schedules.

The acceptance bar for graceful degradation is *differential*: a server
running with tight memory and an armed :class:`FaultPlan` must produce
greedy outputs bit-identical to a fault-free server with abundant memory.
Every recovery path — swap-out degradation to drops, swap-in fallback to
recompute, checksum-detected corruption, transient allocation retries —
funnels into the §4.3.4 recompute path, which replays the exact same
tokens through the exact same deterministic model, so outputs must not
change.  Terminal faults (retries exhausted) fail one request with a
structured error while the rest of the batch keeps going.
"""

import os

import pytest

from repro.core.server import StatefulChatServer
from repro.faults import FaultPlan, FaultSite, RequestFaultedError
from repro.model.config import tiny_llama_config, tiny_opt_config

# CI arms one extra seed per matrix entry via this env var.
_EXTRA = os.environ.get("CHAOS_EXTRA_SEED")
CHAOS_SEEDS = [0, 1, 2, 3] + ([int(_EXTRA)] if _EXTRA else [])

RECOVERABLE_RATES = {
    FaultSite.SWAP_IN: 0.4,
    FaultSite.SWAP_OUT: 0.4,
    FaultSite.CPU_READ: 0.3,
}


def drive(server, config, turns=8, convs=4, prompt_len=13, new_tokens=8):
    """Interleave multi-turn conversations; audit after every turn."""
    outputs = []
    for turn in range(turns):
        for conv in range(convs):
            prompt = [
                (conv * 17 + turn * 5 + i) % config.vocab_size
                for i in range(prompt_len)
            ]
            outputs.append(
                (conv, server.chat(conv, prompt_ids=prompt, max_new_tokens=new_tokens))
            )
            server.manager._audit()
    return outputs


def reference_outputs(config, **kwargs):
    server = StatefulChatServer(
        config,
        gpu_capacity_tokens=1 << 20,
        cpu_capacity_tokens=1 << 20,
        seed=0,
    )
    return drive(server, config, **kwargs)


class TestDifferentialUnderFaults:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_outputs_identical_under_recoverable_faults(self, seed):
        config = tiny_llama_config()
        ref = reference_outputs(config)
        plan = FaultPlan(seed=seed, rates=RECOVERABLE_RATES)
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=224,
            cpu_capacity_tokens=512,
            seed=0,
            fault_plan=plan,
        )
        assert drive(server, config) == ref
        # Tight memory + high rates: the run must actually have been chaotic.
        assert plan.total_fired > 0
        assert server.fault_counters.degraded_requests == 0

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_opt_architecture_identical_too(self, seed):
        config = tiny_opt_config()
        ref = reference_outputs(config, turns=5, convs=3)
        plan = FaultPlan(seed=seed, rates=RECOVERABLE_RATES)
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=192,
            cpu_capacity_tokens=512,
            seed=0,
            fault_plan=plan,
        )
        assert drive(server, config, turns=5, convs=3) == ref

    def test_batched_serving_identical_under_faults(self):
        config = tiny_llama_config()
        reference = StatefulChatServer(
            config, gpu_capacity_tokens=1 << 20, cpu_capacity_tokens=1 << 20, seed=0
        )
        plan = FaultPlan(seed=11, rates=RECOVERABLE_RATES)
        # A batch pins all its members, so pressure comes from *rotating*
        # pairs of conversations through a GPU that cannot hold all four.
        chaotic = StatefulChatServer(
            config,
            gpu_capacity_tokens=160,
            cpu_capacity_tokens=512,
            seed=0,
            fault_plan=plan,
        )
        for turn in range(6):
            pair = (0, 1) if turn % 2 == 0 else (2, 3)
            prompts = [
                (conv, [(conv * 13 + turn * 7 + i) % config.vocab_size for i in range(11)])
                for conv in pair
            ]
            want = reference.chat_batch(prompts, max_new_tokens=6)
            got = chaotic.chat_batch(prompts, max_new_tokens=6)
            assert got == want
            chaotic.manager._audit()
        assert plan.total_fired > 0

    def test_terminal_swap_in_falls_back_to_recompute(self):
        """Exhausting SWAP_IN retries degrades to recompute, not an error."""
        config = tiny_llama_config()
        ref = reference_outputs(config, turns=4, convs=3, prompt_len=20, new_tokens=6)
        # Default RetryPolicy allows 3 retries: four consecutive occurrence
        # indices make the first restore's transfer terminally fail.
        plan = FaultPlan(seed=0, schedules={FaultSite.SWAP_IN: (0, 1, 2, 3)})
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=128,
            cpu_capacity_tokens=1024,
            seed=0,
            fault_plan=plan,
        )
        got = drive(server, config, turns=4, convs=3, prompt_len=20, new_tokens=6)
        assert got == ref
        assert server.fault_counters.swap_in_failures == 1
        assert server.fault_counters.recompute_fallbacks >= 1
        assert server.fault_counters.degraded_requests == 0


class TestIndividualRequestFailure:
    def test_terminal_alloc_fails_one_request_only(self):
        config = tiny_llama_config()
        plan = FaultPlan(seed=0, schedules={FaultSite.GPU_ALLOC: (0, 1, 2, 3)})
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=256,
            cpu_capacity_tokens=1024,
            seed=0,
            fault_plan=plan,
        )
        with pytest.raises(RequestFaultedError) as excinfo:
            server.chat(0, prompt_ids=[1, 2, 3, 4], max_new_tokens=4)
        assert excinfo.value.conv_id == 0
        assert excinfo.value.site is FaultSite.GPU_ALLOC
        server.manager._audit()
        assert server.fault_counters.degraded_requests == 1
        assert len(server.failures) == 1
        # The failed conversation left no state behind...
        assert server.manager.conversation(0) is None
        assert server.context_length(0) == 0
        # ...and the server still serves other conversations.
        out = server.chat(1, prompt_ids=[5, 6, 7], max_new_tokens=4)
        assert len(out) == 4
        server.manager._audit()

    def test_failed_conversation_can_start_over(self):
        config = tiny_llama_config()
        plan = FaultPlan(seed=0, schedules={FaultSite.GPU_ALLOC: (0, 1, 2, 3)})
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=256,
            cpu_capacity_tokens=1024,
            seed=0,
            fault_plan=plan,
        )
        with pytest.raises(RequestFaultedError):
            server.chat(0, prompt_ids=[1, 2, 3], max_new_tokens=4)
        # Same conv id, fresh history: behaves like a brand-new conversation.
        reference = StatefulChatServer(
            config, gpu_capacity_tokens=1 << 20, cpu_capacity_tokens=1 << 20, seed=0
        )
        want = reference.chat(0, prompt_ids=[9, 8, 7], max_new_tokens=5)
        assert server.chat(0, prompt_ids=[9, 8, 7], max_new_tokens=5) == want

    def test_batch_continues_around_failed_request(self):
        config = tiny_llama_config()
        reference = StatefulChatServer(
            config, gpu_capacity_tokens=1 << 20, cpu_capacity_tokens=1 << 20, seed=0
        )
        # Conversation 0's restore is the batch's first GPU_ALLOC draw;
        # four consecutive fires exhaust the default retry budget, so it
        # fails individually while conversations 1 and 2 are served.
        plan = FaultPlan(seed=0, schedules={FaultSite.GPU_ALLOC: (0, 1, 2, 3)})
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=512,
            cpu_capacity_tokens=1024,
            seed=0,
            fault_plan=plan,
        )
        first = [(conv, [conv * 5 + 1, conv * 5 + 2]) for conv in range(3)]
        want = reference.chat_batch(first, max_new_tokens=4)
        got = server.chat_batch(first, max_new_tokens=4)
        assert server.fault_counters.degraded_requests == 1
        assert server.failures[-1].conv_id == 0
        assert set(got) == {1, 2}
        assert got == {conv: want[conv] for conv in (1, 2)}
        server.manager._audit()

        # Next turn is fault-free: the survivors continue from their
        # history and the failed conversation starts over cleanly.
        second = [(conv, [conv * 7 + 3, conv * 7 + 4]) for conv in range(3)]
        want = reference.chat_batch(second, max_new_tokens=4)
        got = server.chat_batch(second, max_new_tokens=4)
        assert set(got) == {0, 1, 2}
        assert got[1] == want[1] and got[2] == want[2]
        # Conversation 0 lost its first turn, so compare it against a
        # reference that never saw that turn.
        fresh = StatefulChatServer(
            config, gpu_capacity_tokens=1 << 20, cpu_capacity_tokens=1 << 20, seed=0
        )
        assert got[0] == fresh.chat(0, prompt_ids=[3, 4], max_new_tokens=4)
        server.manager._audit()


class TestCorruptionRecovery:
    def test_checksum_detects_and_recovers(self):
        config = tiny_llama_config()
        ref = reference_outputs(config, turns=6, convs=3)
        plan = FaultPlan(seed=2, rates={FaultSite.CPU_READ: 0.5})
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=224,
            cpu_capacity_tokens=512,
            seed=0,
            fault_plan=plan,
        )
        assert drive(server, config, turns=6, convs=3) == ref
        assert server.fault_counters.corrupted_chunks > 0
        assert server.fault_counters.recompute_fallbacks > 0
