"""Unit tests for the deterministic fault-injection plan and retry policy."""

import dataclasses

import pytest

from repro.faults import (
    SITES,
    ChunkCorruptionError,
    FaultCounters,
    FaultError,
    FaultPlan,
    FaultSite,
    GpuAllocationFaultError,
    RequestFaultedError,
    RetryPolicy,
    SiteSpec,
    TransferFaultError,
    attempt_with_retries,
    site_names,
)


class TestSiteRegistry:
    """The SITES registry is the single source of truth for fault-site
    wire names; the enum, the CLI and the lint rule all derive from it."""

    def test_registry_matches_enum_in_order(self):
        # Order matters: per-site RNG streams derive from the ordinal.
        assert site_names() == tuple(s.value for s in FaultSite)

    def test_specs_are_self_consistent(self):
        for name, spec in SITES.items():
            assert isinstance(spec, SiteSpec)
            assert spec.name == name
            assert spec.tier
            assert 0.0 < spec.rate_scale <= 1.0
            assert spec.description

    def test_every_registry_name_constructs_a_site(self):
        for name in site_names():
            assert FaultSite(name).value == name


class TestFaultPlanDeterminism:
    def test_same_seed_same_draws(self):
        a = FaultPlan(seed=5, rates={FaultSite.SWAP_IN: 0.5})
        b = FaultPlan(seed=5, rates={FaultSite.SWAP_IN: 0.5})
        draws_a = [a.fires(FaultSite.SWAP_IN) for _ in range(200)]
        draws_b = [b.fires(FaultSite.SWAP_IN) for _ in range(200)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, rates={FaultSite.SWAP_IN: 0.5})
        b = FaultPlan(seed=2, rates={FaultSite.SWAP_IN: 0.5})
        assert [a.fires(FaultSite.SWAP_IN) for _ in range(200)] != [
            b.fires(FaultSite.SWAP_IN) for _ in range(200)
        ]

    def test_sites_have_independent_streams(self):
        """Draining one site's stream must not shift another's."""
        a = FaultPlan(seed=9, rates={s: 0.5 for s in FaultSite})
        b = FaultPlan(seed=9, rates={s: 0.5 for s in FaultSite})
        for _ in range(100):
            a.fires(FaultSite.SWAP_OUT)  # extra draws on an unrelated site
        draws_a = [a.fires(FaultSite.CPU_READ) for _ in range(100)]
        draws_b = [b.fires(FaultSite.CPU_READ) for _ in range(100)]
        assert draws_a == draws_b

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=0)
        assert not any(plan.fires(FaultSite.GPU_ALLOC) for _ in range(500))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, rates={FaultSite.GPU_ALLOC: 1.0})
        assert all(plan.fires(FaultSite.GPU_ALLOC) for _ in range(50))


class TestFaultPlanSchedules:
    def test_explicit_occurrence_indices(self):
        plan = FaultPlan(seed=0, schedules={FaultSite.SWAP_IN: (0, 3)})
        fired = [plan.fires(FaultSite.SWAP_IN) for _ in range(6)]
        assert fired == [True, False, False, True, False, False]

    def test_schedule_does_not_disturb_rate_stream(self):
        """A scheduled fire still consumes exactly one RNG draw."""
        scheduled = FaultPlan(
            seed=4,
            rates={FaultSite.CPU_READ: 0.3},
            schedules={FaultSite.CPU_READ: (2,)},
        )
        plain = FaultPlan(seed=4, rates={FaultSite.CPU_READ: 0.3})
        a = [scheduled.fires(FaultSite.CPU_READ) for _ in range(40)]
        b = [plain.fires(FaultSite.CPU_READ) for _ in range(40)]
        # Identical except possibly at the scheduled index.
        assert a[2] is True
        assert a[:2] == b[:2] and a[3:] == b[3:]

    def test_max_failures_caps_fires(self):
        plan = FaultPlan(
            seed=0,
            rates={FaultSite.SWAP_OUT: 1.0},
            max_failures={FaultSite.SWAP_OUT: 3},
        )
        fired = [plan.fires(FaultSite.SWAP_OUT) for _ in range(10)]
        assert sum(fired) == 3
        assert fired[:3] == [True, True, True]

    def test_counting(self):
        plan = FaultPlan(seed=0, schedules={FaultSite.SWAP_IN: (1,)})
        for _ in range(4):
            plan.fires(FaultSite.SWAP_IN)
        assert plan.occurrences[FaultSite.SWAP_IN] == 4
        assert plan.fired[FaultSite.SWAP_IN] == 1
        assert plan.total_fired == 1

    def test_quiet_plan_never_fires(self):
        plan = FaultPlan.quiet()
        assert not any(plan.fires(s) for s in FaultSite for _ in range(20))


class TestRetryPolicy:
    def test_backoffs_grow_geometrically(self):
        policy = RetryPolicy(max_retries=3, base_backoff=0.01, multiplier=2.0)
        assert list(policy.backoffs()) == pytest.approx([0.01, 0.02, 0.04])
        assert policy.total_backoff == pytest.approx(0.07)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.0)

    def test_attempt_success_first_try(self):
        plan = FaultPlan(seed=0)  # never fires
        ok, retries, delay = attempt_with_retries(
            plan, FaultSite.GPU_ALLOC, RetryPolicy()
        )
        assert (ok, retries, delay) == (True, 0, 0.0)

    def test_attempt_recovers_after_transient(self):
        # Occurrences 0 and 1 fail, 2 succeeds.
        plan = FaultPlan(seed=0, schedules={FaultSite.GPU_ALLOC: (0, 1)})
        policy = RetryPolicy(max_retries=3, base_backoff=0.01, multiplier=2.0)
        ok, retries, delay = attempt_with_retries(plan, FaultSite.GPU_ALLOC, policy)
        assert ok
        assert retries == 2
        assert delay == pytest.approx(0.01 + 0.02)

    def test_attempt_exhausts_retries(self):
        plan = FaultPlan(seed=0, schedules={FaultSite.GPU_ALLOC: (0, 1, 2, 3)})
        policy = RetryPolicy(max_retries=3, base_backoff=0.01, multiplier=2.0)
        ok, retries, delay = attempt_with_retries(plan, FaultSite.GPU_ALLOC, policy)
        assert not ok
        assert retries == 3
        assert delay == pytest.approx(policy.total_backoff)


class TestFaultCounters:
    def test_starts_at_zero(self):
        counters = FaultCounters()
        assert counters.total == 0
        assert all(v == 0 for v in counters.as_dict().values())

    def test_as_dict_keys(self):
        d = FaultCounters().as_dict()
        for key in (
            "swap_in_failures",
            "swap_out_failures",
            "alloc_faults",
            "corrupted_chunks",
            "recompute_fallbacks",
            "retries",
            "degraded_requests",
            "worker_stalls",
        ):
            assert key in d

    def test_total_sums_fields(self):
        counters = FaultCounters()
        counters.retries = 3
        counters.swap_in_failures = 2
        assert counters.total == 5


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(TransferFaultError, FaultError)
        assert issubclass(GpuAllocationFaultError, FaultError)
        assert issubclass(ChunkCorruptionError, FaultError)
        assert issubclass(RequestFaultedError, FaultError)
        assert issubclass(FaultError, RuntimeError)

    def test_messages_carry_context(self):
        err = ChunkCorruptionError(conv_id=7, chunk_index=3)
        assert "7" in str(err) and "3" in str(err)
        req = RequestFaultedError(conv_id=9, site=FaultSite.GPU_ALLOC, attempts=4)
        assert "9" in str(req) and "4" in str(req)
