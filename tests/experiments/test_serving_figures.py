"""Structure tests for the serving-figure experiment modules.

These run at miniature scale (tens of simulated seconds) purely to pin
the modules' interfaces — curve keys, row schemas, ratio helpers.  The
paper-shape assertions run at full scale in ``benchmarks/``.
"""

import pytest

from repro.experiments import fig10, fig11, fig13, fig14, fig15, fig15x
from repro.experiments.common import RatePoint
from repro.model import LLAMA2_13B, OPT_13B, OPT_66B
from repro.workload import SHAREGPT

TINY_KW = dict(rates=(1.0, 2.0), duration=40.0, seed=3)


def check_curves(curves, expected_systems):
    assert set(curves) == set(expected_systems)
    for points in curves.values():
        assert [p.request_rate for p in points] == [1.0, 2.0]
        for point in points:
            assert isinstance(point, RatePoint)
            assert point.throughput_rps >= 0
            assert point.mean_norm_latency > 0


class TestFig10Module:
    def test_all_four_systems(self):
        curves = fig10.run_fig10(OPT_13B, SHAREGPT, **TINY_KW)
        check_curves(
            curves,
            {"vLLM", "TensorRT-LLM", "Pensieve", "Pensieve (GPU cache)"},
        )

    def test_system_subset(self):
        curves = fig10.run_fig10(
            OPT_13B, SHAREGPT, systems=("vLLM", "Pensieve"), **TINY_KW
        )
        check_curves(curves, {"vLLM", "Pensieve"})

    def test_headline_ratios_structure(self):
        curves = fig10.run_fig10(
            OPT_13B, SHAREGPT, systems=("vLLM", "Pensieve"), **TINY_KW
        )
        ratios = fig10.headline_ratios(curves, 0.5)
        assert set(ratios) == {"vLLM"}
        assert ratios["vLLM"] > 0

    def test_format_includes_paper_reference(self):
        curves = fig10.run_fig10(
            OPT_13B, SHAREGPT, systems=("vLLM", "Pensieve"), **TINY_KW
        )
        text = fig10.format_fig10(curves, OPT_13B, SHAREGPT)
        assert "Figure 10" in text and "OPT-13B" in text

    def test_paper_tables_complete(self):
        """Every Figure 10 panel has a latency target and paper ratios."""
        for key in fig10.PAPER_LATENCY_TARGETS:
            assert key in fig10.PAPER_RATIOS
            assert set(fig10.PAPER_RATIOS[key]) == {"vLLM", "TensorRT-LLM"}


class TestFig11Module:
    def test_rejects_single_gpu_model(self):
        with pytest.raises(ValueError):
            fig11.run_fig11(OPT_13B, **TINY_KW)

    def test_runs_multi_gpu(self):
        curves = fig11.run_fig11(
            OPT_66B, systems=("vLLM", "Pensieve"), **TINY_KW
        )
        check_curves(curves, {"vLLM", "Pensieve"})

    def test_format_renames_figure(self):
        curves = fig11.run_fig11(
            OPT_66B, systems=("vLLM", "Pensieve"), **TINY_KW
        )
        text = fig11.format_fig11(curves, OPT_66B)
        assert "Figure 11" in text and "4 GPUs" in text


class TestFig13Module:
    def test_two_variants(self):
        curves = fig13.run_fig13(config=LLAMA2_13B, **TINY_KW)
        check_curves(curves, {"unified", "separate"})
        assert "Figure 13" in fig13.format_fig13(curves)


class TestFig14Module:
    def test_two_policies_with_cache_extras(self):
        curves = fig14.run_fig14(cpu_cache_tokens=5000, **TINY_KW)
        check_curves(curves, {"retention-value", "lru"})
        for points in curves.values():
            for point in points:
                assert "hit_rate" in point.extras
                assert "recomputed_tokens" in point.extras
        assert "Figure 14" in fig14.format_fig14(curves)


class TestFig15Module:
    def test_think_time_curves(self):
        curves = fig15.run_fig15(
            think_times=(5.0, 20.0), cpu_cache_tokens=5000, **TINY_KW
        )
        assert set(curves) == {
            "Pensieve think=5s",
            "Pensieve think=20s",
            "vLLM think=5s",
            "vLLM think=20s",
        }
        assert "Figure 15" in fig15.format_fig15(curves)


class TestFig15xModule:
    def test_two_vs_three_tier_curves(self):
        curves = fig15x.run_fig15x(
            think_times=(5.0, 20.0),
            cpu_cache_tokens=5000,
            disk_cache_tokens=50000,
            **TINY_KW,
        )
        assert set(curves) == {
            "two-tier think=5s",
            "two-tier think=20s",
            "three-tier think=5s",
            "three-tier think=20s",
        }
        check_curves(curves, set(curves))
        for name, points in curves.items():
            for point in points:
                assert "hit_rate" in point.extras
                assert "disk_hit_rate" in point.extras
                if name.startswith("three-tier"):
                    assert "nvme_read_gb" in point.extras
                else:
                    assert point.extras["disk_hit_rate"] == 0.0
        assert "Figure 15x" in fig15x.format_fig15x(curves)
