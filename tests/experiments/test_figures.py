"""Smoke + shape tests for the per-figure experiment modules.

Full-scale assertions live in ``benchmarks/``; here each module is run at
reduced scale to pin its structure (row schemas, orderings, formatting).
"""

import pytest

from repro.experiments import fig03, fig04, fig12, tab02
from repro.model import OPT_13B


class TestFig03:
    def test_rows_and_monotonicity(self):
        rows = fig03.run_fig03(history_sizes=(0, 1024, 4096))
        assert [r["history_tokens"] for r in rows] == [0, 1024, 4096]
        stateless = [r["prefill_with_history_s"] for r in rows]
        stateful = [r["prefill_prompt_only_s"] for r in rows]
        assert stateless == sorted(stateless)
        # Stateful prefill barely grows (only attention to longer cache).
        assert stateful[-1] < stateless[-1]

    def test_crossover_exists(self):
        rows = fig03.run_fig03()
        assert any(
            r["prefill_with_history_s"] > r["generation_s"] for r in rows
        )
        assert rows[0]["prefill_with_history_s"] < rows[0]["generation_s"]

    def test_format(self):
        text = fig03.format_fig03(fig03.run_fig03(history_sizes=(0, 1024)))
        assert "Figure 3" in text


class TestFig04:
    def test_normalized_growth_linear(self):
        rows = fig04.run_fig04(context_sizes=(2048, 4096, 8192))
        values = [r["normalized"] for r in rows]
        growth1 = values[1] - values[0]
        growth2 = values[2] - values[1]
        assert growth2 == pytest.approx(2 * growth1, rel=0.2)

    def test_crosses_one(self):
        rows = fig04.run_fig04()
        normalized = [r["normalized"] for r in rows]
        assert normalized[0] < 1.0 < normalized[-1]

    def test_format(self):
        assert "Figure 4" in fig04.format_fig04(fig04.run_fig04())


class TestFig12:
    def test_cost_model_ordering(self):
        rows = fig12.run_fig12(context_sizes=(1024, 8192))
        for row in rows:
            assert row["pensieve_s"] <= row["ideal_s"]
            assert row["copyout_s"] > row["ideal_s"]
            assert row["multiround_s"] > row["ideal_s"]

    def test_copyout_gap_grows_with_context(self):
        rows = fig12.run_fig12(context_sizes=(1024, 16384))
        gap_small = rows[0]["copyout_s"] - rows[0]["ideal_s"]
        gap_large = rows[1]["copyout_s"] - rows[1]["ideal_s"]
        assert gap_large > 4 * gap_small

    def test_measured_mode_runs_real_kernels(self):
        rows = fig12.run_fig12_measured(
            batch_size=2, query_tokens=4, context_sizes=(32, 64), repeats=1
        )
        assert len(rows) == 2
        for row in rows:
            assert row["pensieve_s"] > 0
            assert row["multiround_s"] > 0

    def test_format(self):
        assert "Figure 12" in fig12.format_fig12(
            fig12.run_fig12(context_sizes=(1024,))
        )


class TestTab02:
    def test_measured_close_to_paper(self):
        rows = tab02.run_tab02(num_conversations=2000, seed=1)
        for row in rows:
            assert row["mean_turns"] == pytest.approx(
                row["paper_mean_turns"], rel=0.12
            )
            assert row["mean_input_len"] == pytest.approx(
                row["paper_mean_input_len"], rel=0.12
            )
            assert row["mean_output_len"] == pytest.approx(
                row["paper_mean_output_len"], rel=0.12
            )
            assert row["max_context"] <= 16384

    def test_format(self):
        assert "Table 2" in tab02.format_tab02(tab02.run_tab02(500))
