"""Tests for the experiment machinery (sweeps, curve queries)."""

import pytest

from repro.experiments.common import (
    RatePoint,
    format_curve_table,
    run_rate_sweep,
    run_serving_once,
    throughput_at_latency,
)
from repro.serving import make_vllm
from repro.workload.dataset import SHAREGPT

from tests.serving.conftest import TINY, scripted_conversation, spec_with_capacity


def point(rate, thr, mean, p90=None):
    return RatePoint(
        request_rate=rate,
        throughput_rps=thr,
        mean_norm_latency=mean,
        p90_norm_latency=p90 if p90 is not None else mean * 1.5,
        num_requests=100,
        extras={},
    )


class TestThroughputAtLatency:
    def test_interpolates_at_crossing(self):
        curve = [point(1, 1.0, 0.05), point(2, 2.0, 0.10), point(4, 3.0, 0.30)]
        # Target 0.2 sits halfway between the 2nd and 3rd point.
        thr = throughput_at_latency(curve, 0.20)
        assert thr == pytest.approx(2.5)

    def test_plateau_returns_best_compliant(self):
        curve = [point(1, 1.0, 0.05), point(2, 2.0, 0.06)]
        assert throughput_at_latency(curve, 0.5) == 2.0

    def test_all_violating_returns_zero(self):
        curve = [point(1, 1.0, 0.9)]
        assert throughput_at_latency(curve, 0.1) == 0.0

    def test_p90_selector(self):
        curve = [point(1, 1.0, 0.05, p90=0.5)]
        assert throughput_at_latency(curve, 0.1, use_p90=True) == 0.0
        assert throughput_at_latency(curve, 0.1, use_p90=False) == 1.0

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            throughput_at_latency([], 0.1)

    def test_unsorted_input_handled(self):
        curve = [point(4, 3.0, 0.30), point(1, 1.0, 0.05), point(2, 2.0, 0.10)]
        assert throughput_at_latency(curve, 0.20) == pytest.approx(2.5)


class TestRunners:
    def factory(self):
        spec = spec_with_capacity(2048)
        return lambda loop: make_vllm(loop, TINY, spec)

    def test_run_serving_once(self):
        engine, stats = run_serving_once(
            self.factory(), [scripted_conversation(0, [(8, 5)])]
        )
        assert stats.num_requests == 1
        assert engine.name == "vLLM"

    def test_rate_sweep_produces_one_point_per_rate(self):
        points = run_rate_sweep(
            self.factory(), SHAREGPT, rates=[0.5, 1.0], duration=20.0, seed=3
        )
        assert [p.request_rate for p in points] == [0.5, 1.0]
        assert all(p.throughput_rps > 0 for p in points)

    def test_sweep_is_seed_reproducible(self):
        a = run_rate_sweep(self.factory(), SHAREGPT, [1.0], duration=20.0, seed=3)
        b = run_rate_sweep(self.factory(), SHAREGPT, [1.0], duration=20.0, seed=3)
        assert a[0].throughput_rps == b[0].throughput_rps
        assert a[0].mean_norm_latency == b[0].mean_norm_latency

    def test_extras_fn_applied(self):
        points = run_rate_sweep(
            self.factory(), SHAREGPT, [1.0], duration=20.0, seed=3,
            extras_fn=lambda engine: {"iters": engine.iterations},
        )
        assert points[0].extras["iters"] > 0
        assert "iters" in points[0].as_row()

    def test_format_curve_table(self):
        text = format_curve_table("x", [point(1, 1.0, 0.05)])
        assert "x" in text and "1.000" in text
