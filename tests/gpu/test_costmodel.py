"""Tests for the roofline cost model."""

import pytest

from repro.gpu import A100_80GB, BatchShape, CostModel, KernelVariant
from repro.gpu.costmodel import causal_attention_flop_tokens
from repro.model import LLAMA2_13B, OPT_13B, OPT_66B


@pytest.fixture
def cm():
    return CostModel(OPT_13B, A100_80GB)


class TestBatchShape:
    def test_uniform(self):
        shape = BatchShape.uniform(4, 8, 100)
        assert len(shape) == 4
        assert shape.total_query_tokens == 32
        assert shape.total_context_tokens == 400

    def test_of_accepts_iterables(self):
        shape = BatchShape.of([(1, 10), [2, 20]])
        assert shape.items == ((1, 10), (2, 20))

    def test_rejects_query_longer_than_context(self):
        with pytest.raises(ValueError):
            BatchShape.of([(11, 10)])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BatchShape.of([(-1, 10)])


class TestCausalFlopTokens:
    def test_single_token(self):
        # One token attending to a 100-token context: exactly 100.
        assert causal_attention_flop_tokens(1, 100) == 100.0

    def test_full_causal_prefill(self):
        # q == c == n: sum of 1..n.
        assert causal_attention_flop_tokens(4, 4) == 1 + 2 + 3 + 4

    def test_chunk_at_end_of_context(self):
        # 2 tokens at the end of a 10-token context: attend to 9 and 10.
        assert causal_attention_flop_tokens(2, 10) == 19.0

    def test_zero_query(self):
        assert causal_attention_flop_tokens(0, 50) == 0.0


class TestLinearTime:
    def test_zero_tokens_is_free(self, cm):
        assert cm.linear_time(0) == 0.0

    def test_monotone_in_tokens(self, cm):
        times = [cm.linear_time(n) for n in (1, 32, 256, 2048)]
        assert times == sorted(times)
        assert times[0] > 0

    def test_memory_bound_floor_at_small_batch(self, cm):
        """Decoding one token is dominated by streaming the weights."""
        t1 = cm.linear_time(1)
        t2 = cm.linear_time(2)
        # Both are memory-bound on the same weight traffic -> nearly equal.
        assert t2 < 1.5 * t1

    def test_compute_bound_scaling_at_large_batch(self, cm):
        """In the compute-bound regime time scales ~linearly with tokens."""
        t4k = cm.linear_time(4096)
        t8k = cm.linear_time(8192)
        assert t8k == pytest.approx(2 * t4k, rel=0.1)

    def test_fusion_factor_speeds_up(self):
        base = CostModel(OPT_13B, A100_80GB).linear_time(4096)
        fused = CostModel(OPT_13B, A100_80GB, fusion_factor=0.8).linear_time(4096)
        assert fused < base

    def test_invalid_fusion_factor(self):
        with pytest.raises(ValueError):
            CostModel(OPT_13B, A100_80GB, fusion_factor=0.0)

    def test_tensor_parallel_is_faster_per_gpu_batch(self):
        single = CostModel(OPT_66B.scaled_to(1), A100_80GB).linear_time(4096)
        quad = CostModel(OPT_66B, A100_80GB).linear_time(4096)
        assert quad < single
        # ...but not 4x faster: the all-reduce takes its cut.
        assert quad > single / 4


class TestAttentionTime:
    def test_linear_in_context_size(self, cm):
        """Figure 4: attention cost for a fixed chunk grows linearly."""
        t = [cm.attention_chunk_time(32, c) for c in (2048, 4096, 8192)]
        g1 = t[1] - t[0]
        g2 = t[2] - t[1]
        assert g2 == pytest.approx(2 * g1, rel=0.15)

    def test_pensieve_matches_ideal(self, cm):
        """§6.4: the multi-token paged kernel matches (slightly beats)
        the ideal contiguous kernel."""
        shape = BatchShape.uniform(32, 8, 4096)
        ideal = cm.attention_time(shape, KernelVariant.IDEAL_CONTIGUOUS)
        pensieve = cm.attention_time(shape, KernelVariant.PENSIEVE_PAGED)
        assert pensieve <= ideal
        assert pensieve > 0.9 * ideal

    def test_copyout_overhead_grows_with_context(self, cm):
        """Figure 12: copy-out cost is proportional to past KV-tokens."""
        ratios = []
        for ctx in (1024, 4096, 16384):
            shape = BatchShape.uniform(32, 8, ctx)
            ideal = cm.attention_time(shape, KernelVariant.IDEAL_CONTIGUOUS)
            copyout = cm.attention_time(shape, KernelVariant.COPYOUT)
            ratios.append(copyout / ideal)
        assert all(r > 1.3 for r in ratios)

    def test_multiround_scales_with_query_len(self, cm):
        """Figure 12: multi-round PagedAttention is linear in prompt length."""
        t8 = cm.attention_time(
            BatchShape.uniform(32, 8, 4096), KernelVariant.MULTIROUND_PAGED
        )
        t1 = cm.attention_time(
            BatchShape.uniform(32, 1, 4096), KernelVariant.MULTIROUND_PAGED
        )
        assert t8 == pytest.approx(8 * t1, rel=0.2)
        ideal8 = cm.attention_time(
            BatchShape.uniform(32, 8, 4096), KernelVariant.IDEAL_CONTIGUOUS
        )
        assert t8 > 3 * ideal8

    def test_gqa_reduces_attention_memory_traffic(self):
        """Llama 2-13B reads 4x less KV per context token than OPT-13B."""
        opt = CostModel(OPT_13B, A100_80GB)
        llama = CostModel(LLAMA2_13B, A100_80GB)
        shape = BatchShape.uniform(32, 1, 8192)  # decode: memory-bound
        assert llama.attention_time(shape) < 0.5 * opt.attention_time(shape)


class TestIterationTime:
    def test_empty_batch_free(self, cm):
        assert cm.iteration_time(BatchShape.of([])) == 0.0

    def test_includes_step_overhead(self, cm):
        t = cm.iteration_time(BatchShape.uniform(1, 1, 1))
        assert t >= cm.spec.step_overhead

    def test_swap_in_pipelining_hides_small_transfers(self, cm):
        shape = BatchShape.uniform(32, 1, 2048)
        compute_only = cm.iteration_time(shape)
        small_transfer = compute_only * 0.2 * cm.spec.pcie_bandwidth
        pipelined = cm.iteration_time(shape, swap_in_bytes=small_transfer)
        blocking = cm.iteration_time(
            shape, swap_in_bytes=small_transfer, pipelined=False
        )
        # Pipelined: mostly hidden; blocking: full serialization.
        assert pipelined < blocking
        assert pipelined < compute_only * 1.1
        assert blocking == pytest.approx(compute_only * 1.2, rel=0.01)

    def test_huge_transfer_dominates_even_pipelined(self, cm):
        shape = BatchShape.uniform(1, 1, 128)
        compute_only = cm.iteration_time(shape)
        transfer_bytes = compute_only * 10 * cm.spec.pcie_bandwidth
        pipelined = cm.iteration_time(shape, swap_in_bytes=transfer_bytes)
        assert pipelined >= compute_only * 10

    def test_pipelined_time_closed_form(self):
        # Tc dominates.
        assert CostModel.pipelined_time(1.0, 0.1, 10) == pytest.approx(1.01)
        # Tt dominates.
        assert CostModel.pipelined_time(0.1, 1.0, 10) == pytest.approx(1.01)
        with pytest.raises(ValueError):
            CostModel.pipelined_time(1.0, 1.0, 0)


class TestFigureShapes:
    def test_fig3_prefill_overtakes_generation(self, cm):
        """Figure 3: with growing history, recomputing the history makes
        prefill outgrow 200 generation steps."""
        generation = cm.generation_time(32, 232, 200)
        prefill_small = cm.prefill_time(32, 200, 0)
        # Stateless prefill must reprocess history as prompt tokens.
        prefill_big = cm.prefill_time(32, 200 + 12000, 0)
        assert prefill_small < generation
        assert prefill_big > generation

    def test_fig4_attention_crosses_nonattention(self, cm):
        """Figure 4: normalized attention cost passes 1.0 at a few
        thousand tokens of context."""
        norm = cm.non_attention_chunk_time(32)
        small = cm.attention_chunk_time(32, 256) / norm
        large = cm.attention_chunk_time(32, 16384) / norm
        assert small < 1.0
        assert large > 1.0
