"""Tests for the PCIe transfer engine."""

import pytest

from repro.gpu import Direction, PcieEngine


def make_engine(**kwargs):
    defaults = dict(
        bandwidth=1e9, duplex_penalty=0.8, prioritize_retrieval=True, min_latency=0.0
    )
    defaults.update(kwargs)
    return PcieEngine(**defaults)


class TestBasics:
    def test_duration_is_bytes_over_bandwidth(self):
        eng = make_engine()
        rec = eng.swap_in(0.0, 1e9)
        assert rec.duration == pytest.approx(1.0)
        assert rec.start_time == 0.0

    def test_zero_bytes_is_instant(self):
        eng = make_engine()
        rec = eng.swap_in(0.0, 0)
        assert rec.duration == 0.0

    def test_min_latency_added(self):
        eng = make_engine(min_latency=1e-3)
        rec = eng.swap_in(0.0, 1e6)
        assert rec.duration == pytest.approx(1e-3 + 1e-3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_engine().swap_in(0.0, -5)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            PcieEngine(bandwidth=0)

    def test_invalid_penalty_rejected(self):
        with pytest.raises(ValueError):
            PcieEngine(bandwidth=1e9, duplex_penalty=1.5)


class TestSerialization:
    def test_same_direction_transfers_queue(self):
        eng = make_engine()
        first = eng.swap_in(0.0, 1e9)
        second = eng.swap_in(0.0, 1e9)
        assert second.start_time == pytest.approx(first.end_time)
        assert second.queue_delay == pytest.approx(1.0)

    def test_later_enqueue_after_drain_starts_immediately(self):
        eng = make_engine()
        eng.swap_in(0.0, 1e9)
        rec = eng.swap_in(5.0, 1e9)
        assert rec.start_time == 5.0


class TestDuplexContention:
    def test_overlapping_directions_slow_down(self):
        eng = make_engine(prioritize_retrieval=False)
        eng.swap_in(0.0, 2e9)  # H2D busy until t=2
        rec = eng.swap_out(0.0, 1e9)  # overlaps -> 0.8 GB/s
        assert rec.duration == pytest.approx(1.0 / 0.8)

    def test_non_overlapping_full_speed(self):
        eng = make_engine(prioritize_retrieval=False)
        eng.swap_in(0.0, 1e9)
        rec = eng.swap_out(2.0, 1e9)  # H2D drained at t=1
        assert rec.duration == pytest.approx(1.0)


class TestRetrievalPriority:
    def test_eviction_waits_for_retrieval(self):
        """§5 optimisation: swap-out defers to in-flight swap-in."""
        eng = make_engine(prioritize_retrieval=True)
        swap_in = eng.swap_in(0.0, 2e9)
        rec = eng.swap_out(0.0, 1e9)
        assert rec.start_time == pytest.approx(swap_in.end_time)
        assert rec.duration == pytest.approx(1.0)  # no duplex penalty paid

    def test_retrieval_never_waits_for_eviction(self):
        eng = make_engine(prioritize_retrieval=True)
        eng.swap_out(0.0, 2e9)
        rec = eng.swap_in(0.0, 1e9)
        assert rec.start_time == 0.0
        # Swap-in pays the duplex penalty (eviction already in flight).
        assert rec.duration == pytest.approx(1.0 / 0.8)

    def test_disabled_priority_overlaps(self):
        eng = make_engine(prioritize_retrieval=False)
        eng.swap_in(0.0, 2e9)
        rec = eng.swap_out(0.0, 1e9)
        assert rec.start_time == 0.0


class TestAccounting:
    def test_bytes_moved_tracked_per_direction(self):
        eng = make_engine()
        eng.swap_in(0.0, 100)
        eng.swap_in(0.0, 50)
        eng.swap_out(0.0, 25)
        assert eng.bytes_moved[Direction.H2D] == 150
        assert eng.bytes_moved[Direction.D2H] == 25

    def test_history_and_last(self):
        eng = make_engine()
        assert eng.last() is None
        eng.swap_in(0.0, 100)
        eng.swap_out(0.0, 200)
        assert len(eng.history) == 2
        assert eng.last().direction is Direction.D2H

    def test_idle_at(self):
        eng = make_engine()
        assert eng.idle_at(0.0)
        eng.swap_in(0.0, 1e9)
        assert not eng.idle_at(0.5)
        assert eng.idle_at(1.0)


class TestChunkAccounting:
    """Coalesced transfers: one DMA operation, N chunks of accounting."""

    def test_num_chunks_recorded_and_counted(self):
        from repro.obs import Tracer

        eng = make_engine()
        eng.tracer = Tracer()
        eng.swap_in(0.0, 400, num_chunks=4)
        eng.swap_out(0.0, 100)  # defaults to one chunk
        assert eng.history[0].num_chunks == 4
        assert eng.history[1].num_chunks == 1
        assert eng.tracer.counter("pcie.h2d_chunks") == 4
        assert eng.tracer.counter("pcie.h2d_transfers") == 1
        assert eng.tracer.counter("pcie.d2h_chunks") == 1

    def test_coalesced_transfer_pays_latency_once(self):
        eng = make_engine(min_latency=1e-3)
        one = eng.swap_in(0.0, 400, num_chunks=4)
        per = [make_engine(min_latency=1e-3).swap_in(0.0, 100) for _ in range(4)]
        assert one.duration < sum(r.duration for r in per)

    def test_invalid_num_chunks_rejected(self):
        with pytest.raises(ValueError):
            make_engine().swap_in(0.0, 100, num_chunks=0)
