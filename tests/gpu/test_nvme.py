"""NVMe transfer-engine tests: asymmetric bandwidth, queueing, mixed-queue
contention, reads-over-writes prioritization, and coalescing accounting."""

import pytest

from repro.gpu.nvme import NvmeDirection, NvmeEngine
from repro.obs import Tracer

READ_BW = 3.2e9
WRITE_BW = 1.8e9
LAT = 80e-6


def make_engine(**kwargs):
    defaults = dict(
        read_bandwidth=READ_BW, write_bandwidth=WRITE_BW, min_latency=LAT
    )
    defaults.update(kwargs)
    return NvmeEngine(**defaults)


class TestBasics:
    def test_idle_transfer_duration(self):
        engine = make_engine()
        record = engine.read(0.0, 32e6)
        assert record.start_time == 0.0
        assert record.duration == pytest.approx(LAT + 32e6 / READ_BW)
        assert record.queue_delay == 0.0

    def test_asymmetric_bandwidth(self):
        engine = make_engine()
        read = engine.read(0.0, 64e6)
        write = engine.write(read.end_time, 64e6)
        assert write.duration > read.duration
        assert write.duration == pytest.approx(LAT + 64e6 / WRITE_BW)

    def test_zero_bytes_costs_nothing(self):
        engine = make_engine()
        record = engine.write(1.0, 0)
        assert record.duration == 0.0
        assert engine.bytes_moved[NvmeDirection.WRITE] == 0.0

    def test_fifo_queueing_per_direction(self):
        engine = make_engine()
        first = engine.read(0.0, 32e6)
        second = engine.read(0.0, 32e6)
        assert second.start_time == pytest.approx(first.end_time)
        assert second.queue_delay > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_engine(read_bandwidth=0)
        with pytest.raises(ValueError):
            make_engine(write_bandwidth=-1)
        with pytest.raises(ValueError):
            make_engine(mixed_penalty=0.0)
        with pytest.raises(ValueError):
            make_engine(mixed_penalty=1.5)
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.read(0.0, -1)
        with pytest.raises(ValueError):
            engine.read(0.0, 1024, num_chunks=0)


class TestContention:
    def test_mixed_queue_penalty_slows_read(self):
        engine = make_engine(mixed_penalty=0.5, prioritize_reads=False)
        engine.write(0.0, 64e6)
        read = engine.read(0.0, 32e6)
        assert read.duration == pytest.approx(LAT + 32e6 / (READ_BW * 0.5))

    def test_writes_defer_to_inflight_reads(self):
        engine = make_engine()
        read = engine.read(0.0, 64e6)
        write = engine.write(0.0, 8e6)
        # Demotion waits for the promotion to drain entirely...
        assert write.start_time == pytest.approx(read.end_time)
        # ...and then runs at full bandwidth (no longer mixed).
        assert write.duration == pytest.approx(LAT + 8e6 / WRITE_BW)

    def test_no_prioritization_means_mixed_write(self):
        engine = make_engine(prioritize_reads=False, mixed_penalty=0.7)
        engine.read(0.0, 64e6)
        write = engine.write(0.0, 8e6)
        assert write.start_time == 0.0
        assert write.duration == pytest.approx(LAT + 8e6 / (WRITE_BW * 0.7))

    def test_idle_at(self):
        engine = make_engine()
        assert engine.idle_at(0.0)
        record = engine.read(0.0, 32e6)
        assert not engine.idle_at(record.end_time - 1e-9)
        assert engine.idle_at(record.end_time)


class TestCoalescing:
    def test_one_latency_per_stacked_transfer(self):
        """A 4-chunk coalesced submission pays min_latency once; four
        singleton submissions pay it four times."""
        chunk_bytes = 8e6
        stacked = make_engine().write(0.0, 4 * chunk_bytes, num_chunks=4)
        singles = make_engine()
        t = 0.0
        for _ in range(4):
            t = singles.write(t, chunk_bytes).end_time
        assert t - stacked.end_time == pytest.approx(3 * LAT)

    def test_history_and_byte_accounting(self):
        engine = make_engine()
        engine.write(0.0, 1000, num_chunks=2)
        engine.read(0.0, 500)
        assert engine.bytes_moved[NvmeDirection.WRITE] == 1000
        assert engine.bytes_moved[NvmeDirection.READ] == 500
        assert len(engine.history) == 2
        assert engine.last().direction is NvmeDirection.READ
        assert engine.history[0].num_chunks == 2


class TestTracing:
    def test_counters_reconcile_with_bytes_moved(self):
        engine = make_engine()
        engine.tracer = tracer = Tracer()
        engine.write(0.0, 1000, num_chunks=3)
        engine.read(0.0, 500, num_chunks=2)
        engine.read(1.0, 250)
        assert tracer.counter("nvme.write_bytes") == engine.bytes_moved[
            NvmeDirection.WRITE
        ]
        assert tracer.counter("nvme.read_bytes") == engine.bytes_moved[
            NvmeDirection.READ
        ]
        assert tracer.counter("nvme.write_transfers") == 1
        assert tracer.counter("nvme.read_transfers") == 2
        assert tracer.counter("nvme.write_chunks") == 3
        assert tracer.counter("nvme.read_chunks") == 3
        spans = tracer.spans_named("nvme.write") + tracer.spans_named("nvme.read")
        assert len(spans) == 3
