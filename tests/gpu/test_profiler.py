"""Tests for offline attention-cost profiling and interpolation."""

import pytest

from repro.gpu import A100_80GB, CostModel, OfflineProfiler
from repro.gpu.profiler import AttentionCostProfile
from repro.model import OPT_13B


@pytest.fixture
def profile():
    cm = CostModel(OPT_13B, A100_80GB)
    return OfflineProfiler.from_cost_model(cm).profile(chunk_size=32, max_context=16384)


class TestProfiling:
    def test_power_of_two_sizes(self, profile):
        sizes = profile.context_sizes
        assert sizes[0] == 32
        assert sizes[-1] == 16384
        for a, b in zip(sizes, sizes[1:]):
            assert b == 2 * a

    def test_costs_increase_with_context(self, profile):
        assert list(profile.costs) == sorted(profile.costs)

    def test_constant_cost_positive(self, profile):
        assert profile.constant_cost > 0

    def test_explicit_sizes_override(self):
        cm = CostModel(OPT_13B, A100_80GB)
        prof = OfflineProfiler.from_cost_model(cm).profile(
            chunk_size=32, context_sizes=[100, 200, 400]
        )
        assert prof.context_sizes == (100, 200, 400)

    def test_bad_chunk_size(self):
        cm = CostModel(OPT_13B, A100_80GB)
        with pytest.raises(ValueError):
            OfflineProfiler.from_cost_model(cm).profile(chunk_size=0)

    def test_too_few_points(self):
        cm = CostModel(OPT_13B, A100_80GB)
        with pytest.raises(ValueError):
            OfflineProfiler.from_cost_model(cm).profile(chunk_size=32, max_context=32)


class TestInterpolation:
    def test_exact_at_profiled_points(self, profile):
        for size, cost in zip(profile.context_sizes, profile.costs):
            assert profile.attention_cost(size) == pytest.approx(cost)

    def test_interpolates_between_points(self, profile):
        mid = profile.attention_cost(3 * 1024)  # between 2048 and 4096
        assert profile.attention_cost(2048) < mid < profile.attention_cost(4096)

    def test_interpolation_close_to_true_cost(self, profile):
        """For a piecewise-linear truth the interpolation is near-exact."""
        cm = CostModel(OPT_13B, A100_80GB)
        for ctx in (100, 777, 3000, 10000):
            true = cm.attention_chunk_time(32, ctx)
            est = profile.attention_cost(ctx)
            assert est == pytest.approx(true, rel=0.25)

    def test_extrapolates_beyond_range(self, profile):
        beyond = profile.attention_cost(32768)
        assert beyond > profile.attention_cost(16384)

    def test_below_first_point_scales_to_zero(self, profile):
        assert profile.attention_cost(0) == 0.0
        assert 0 < profile.attention_cost(16) < profile.attention_cost(32)

    def test_negative_context_rejected(self, profile):
        with pytest.raises(ValueError):
            profile.attention_cost(-1)

    def test_recompute_cost_adds_constant(self, profile):
        ctx = 4096
        assert profile.recompute_cost(ctx) == pytest.approx(
            profile.attention_cost(ctx) + profile.constant_cost
        )


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            AttentionCostProfile(32, (1, 2, 3), (0.1, 0.2), 0.01)

    def test_unsorted_sizes(self):
        with pytest.raises(ValueError):
            AttentionCostProfile(32, (2, 1), (0.1, 0.2), 0.01)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            AttentionCostProfile(32, (2,), (0.1,), 0.01)


class TestMeasurementAgnostic:
    def test_profiler_works_with_any_measure_function(self):
        """The profiler must accept arbitrary measurement callables
        (e.g. wall-clock timing of the numpy kernels)."""
        profiler = OfflineProfiler(
            measure_attention=lambda s, l: 0.001 * l + 0.01 * s,
            measure_constant=lambda s: 0.05,
        )
        prof = profiler.profile(chunk_size=16, max_context=64)
        assert prof.attention_cost(32) == pytest.approx(0.001 * 32 + 0.01 * 16)
        assert prof.constant_cost == 0.05
