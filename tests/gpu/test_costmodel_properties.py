"""Property-based tests for the roofline cost model."""

from hypothesis import given, settings, strategies as st

from repro.gpu import A100_80GB, BatchShape, CostModel, KernelVariant
from repro.model import LLAMA2_13B, OPT_13B

MODELS = [OPT_13B, LLAMA2_13B]

batch_items = st.lists(
    st.tuples(st.integers(1, 64), st.integers(0, 4096)).map(
        lambda t: (t[0], t[0] + t[1])  # context >= query
    ),
    min_size=1,
    max_size=16,
)


@settings(max_examples=80, deadline=None)
@given(items=batch_items, model=st.sampled_from(MODELS))
def test_iteration_time_positive_and_finite(items, model):
    cm = CostModel(model, A100_80GB)
    shape = BatchShape.of(items)
    t = cm.iteration_time(shape)
    assert 0 < t < 3600


@settings(max_examples=80, deadline=None)
@given(items=batch_items, model=st.sampled_from(MODELS))
def test_adding_a_request_never_speeds_up_the_iteration(items, model):
    cm = CostModel(model, A100_80GB)
    base = cm.iteration_time(BatchShape.of(items))
    bigger = cm.iteration_time(BatchShape.of(items + [(8, 512)]))
    assert bigger >= base


@settings(max_examples=80, deadline=None)
@given(
    items=batch_items,
    model=st.sampled_from(MODELS),
    growth=st.integers(1, 2048),
)
def test_longer_context_never_cheaper(items, model, growth):
    cm = CostModel(model, A100_80GB)
    grown = [(q, c + growth) for q, c in items]
    assert cm.attention_time(BatchShape.of(grown)) >= cm.attention_time(
        BatchShape.of(items)
    )


@settings(max_examples=80, deadline=None)
@given(items=batch_items, model=st.sampled_from(MODELS))
def test_variant_ordering_holds_for_all_shapes(items, model):
    """Pensieve <= ideal <= copyout, and multiround >= ideal, always."""
    cm = CostModel(model, A100_80GB)
    shape = BatchShape.of(items)
    ideal = cm.attention_time(shape, KernelVariant.IDEAL_CONTIGUOUS)
    pensieve = cm.attention_time(shape, KernelVariant.PENSIEVE_PAGED)
    copyout = cm.attention_time(shape, KernelVariant.COPYOUT)
    multiround = cm.attention_time(shape, KernelVariant.MULTIROUND_PAGED)
    assert pensieve <= ideal <= copyout
    assert multiround >= ideal


@settings(max_examples=80, deadline=None)
@given(
    compute=st.floats(min_value=1e-6, max_value=10.0),
    transfer=st.floats(min_value=0.0, max_value=10.0),
    layers=st.integers(1, 128),
)
def test_pipelined_time_bounds(compute, transfer, layers):
    """Pipelining is never worse than serialization and never better than
    the slower of the two stages."""
    t = CostModel.pipelined_time(compute, transfer, layers)
    assert t <= compute + transfer + 1e-12
    assert t >= max(compute, transfer) - 1e-12


@settings(max_examples=60, deadline=None)
@given(
    tokens=st.integers(1, 8192),
    swap_bytes=st.floats(min_value=0, max_value=1e9),
    model=st.sampled_from(MODELS),
)
def test_pipelined_swap_never_slower_than_blocking(tokens, swap_bytes, model):
    cm = CostModel(model, A100_80GB)
    shape = BatchShape.uniform(4, 1, tokens)
    pipelined = cm.iteration_time(shape, swap_in_bytes=swap_bytes, pipelined=True)
    blocking = cm.iteration_time(shape, swap_in_bytes=swap_bytes, pipelined=False)
    assert pipelined <= blocking + 1e-12
