"""Property-based tests for the PCIe transfer engine."""

from hypothesis import given, settings, strategies as st

from repro.gpu import Direction, PcieEngine

transfer_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),   # enqueue time offset
        st.floats(min_value=0.0, max_value=1e9),     # bytes
        st.sampled_from([Direction.H2D, Direction.D2H]),
    ),
    min_size=1,
    max_size=40,
)


def run_ops(ops, **engine_kwargs):
    engine = PcieEngine(bandwidth=1e9, min_latency=0.0, **engine_kwargs)
    now = 0.0
    records = []
    for offset, num_bytes, direction in ops:
        now += offset  # enqueue times are non-decreasing
        records.append(engine.transfer(now, num_bytes, direction))
    return engine, records


@settings(max_examples=100, deadline=None)
@given(ops=transfer_ops)
def test_same_direction_transfers_never_overlap(ops):
    _, records = run_ops(ops)
    for direction in (Direction.H2D, Direction.D2H):
        stream = [r for r in records if r.direction is direction]
        for a, b in zip(stream, stream[1:]):
            assert b.start_time >= a.end_time - 1e-9


@settings(max_examples=100, deadline=None)
@given(ops=transfer_ops)
def test_transfers_never_start_before_enqueue(ops):
    _, records = run_ops(ops)
    for record in records:
        assert record.start_time >= record.enqueue_time - 1e-9
        assert record.end_time >= record.start_time


@settings(max_examples=100, deadline=None)
@given(ops=transfer_ops)
def test_bytes_accounting_is_exact(ops):
    engine, records = run_ops(ops)
    for direction in (Direction.H2D, Direction.D2H):
        expected = sum(b for _, b, d in ops if d is direction)
        assert engine.bytes_moved[direction] == expected


@settings(max_examples=100, deadline=None)
@given(ops=transfer_ops)
def test_duration_never_beats_full_bandwidth(ops):
    """No transfer can finish faster than bytes / peak bandwidth."""
    engine, records = run_ops(ops)
    for record in records:
        assert record.duration >= record.num_bytes / engine.bandwidth - 1e-9


@settings(max_examples=100, deadline=None)
@given(ops=transfer_ops)
def test_swap_ins_never_queue_behind_evictions(ops):
    """With retrieval-first scheduling, a swap-in starts as soon as its
    own direction's queue allows — it never waits on the eviction queue.
    (Evictions, by contrast, may be deferred behind in-flight swap-ins.)"""
    _, records = run_ops(ops, prioritize_retrieval=True)
    prev_end = 0.0
    for record in records:
        if record.direction is Direction.H2D:
            expected_start = max(record.enqueue_time, prev_end)
            assert abs(record.start_time - expected_start) < 1e-9
            prev_end = record.end_time
