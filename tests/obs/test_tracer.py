"""Unit tests for the tracer core and the exporters."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_jsonl,
    text_report,
    to_chrome_trace,
    to_jsonl,
    write_trace_artifacts,
)


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------


class TestSpans:
    def test_begin_end_records_interval(self):
        tracer = Tracer()
        sid = tracer.begin("work", t=1.0, kind="demo")
        tracer.end(sid, t=3.5, outcome="ok")
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.t0 == 1.0 and span.t1 == 3.5
        assert span.duration == 2.5
        assert span.attrs == {"kind": "demo", "outcome": "ok"}
        assert span.wall_duration >= 0.0

    def test_ids_are_sequential_in_creation_order(self):
        tracer = Tracer()
        ids = [tracer.begin(f"s{i}", t=float(i)) for i in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert [s.id for s in tracer.spans] == ids

    def test_explicit_parent(self):
        tracer = Tracer()
        root = tracer.begin("request", t=0.0)
        child = tracer.begin("prefill", t=0.0, parent=root)
        tracer.end(child, t=1.0)
        tracer.end(root, t=2.0)
        spans = {s.name: s for s in tracer.spans}
        assert spans["prefill"].parent == root
        assert spans["request"].parent is None

    def test_end_tolerates_unknown_and_double_close(self):
        tracer = Tracer()
        sid = tracer.begin("once", t=0.0)
        tracer.end(sid, t=1.0)
        tracer.end(sid, t=9.0)  # double close: ignored
        tracer.end(0, t=9.0)  # null handle: ignored
        tracer.end(12345, t=9.0)  # never opened: ignored
        (span,) = tracer.spans
        assert span.t1 == 1.0

    def test_complete_is_one_shot(self):
        tracer = Tracer()
        tracer.complete("iteration", 2.0, 2.25, batch_size=4)
        (span,) = tracer.spans
        assert span.t0 == 2.0 and span.t1 == 2.25
        assert span.attrs["batch_size"] == 4

    def test_context_manager_nests_via_stack(self):
        tracer = Tracer()
        with tracer.span("outer", t=0.0):
            with tracer.span("inner", t=0.5):
                pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["inner"].parent == spans["outer"].id
        assert spans["outer"].parent is None
        assert spans["outer"].t1 is not None and spans["inner"].t1 is not None

    def test_close_open_marks_truncated(self):
        tracer = Tracer()
        sid = tracer.begin("in_flight", t=1.0)
        tracer.close_open(t=7.0)
        (span,) = tracer.spans
        assert span.t1 == 7.0
        assert span.attrs["truncated"] is True
        # idempotent
        tracer.close_open(t=9.0)
        assert tracer.spans[0].t1 == 7.0
        assert sid == span.id

    def test_clock_fallback_resolves_omitted_time(self):
        times = iter([10.0, 11.0])
        tracer = Tracer(clock=lambda: next(times))
        sid = tracer.begin("clocked")
        tracer.end(sid)
        (span,) = tracer.spans
        assert (span.t0, span.t1) == (10.0, 11.0)


class TestCountersAndGauges:
    def test_count_accumulates(self):
        tracer = Tracer()
        tracer.count("bytes", 10)
        tracer.count("bytes", 5)
        tracer.count("events")
        assert tracer.counter("bytes") == 15
        assert tracer.counter("events") == 1
        assert tracer.counter("missing") == 0.0

    def test_gauge_samples_in_order(self):
        tracer = Tracer()
        tracer.gauge("depth", 3, t=1.0)
        tracer.gauge("depth", 5, t=2.0)
        names_values = [(g[0], g[3]) for g in tracer.gauge_samples]
        assert names_values == [("depth", 3.0), ("depth", 5.0)]

    def test_instants_capture_attrs(self):
        tracer = Tracer()
        tracer.instant("evict", t=4.0, conv_id=7, tokens=32)
        ((name, t, _wall, _parent, attrs),) = tracer.instants
        assert name == "evict" and t == 4.0
        assert attrs == {"conv_id": 7, "tokens": 32}


class TestNullTracer:
    def test_disabled_and_noop(self):
        null = NullTracer()
        assert not null.enabled
        assert null.begin("x", t=1.0) == 0
        assert null.complete("x", 0.0, 1.0) == 0
        null.end(0, t=1.0)
        null.instant("x")
        null.count("x", 5)
        null.gauge("x", 1.0)
        null.close_open()
        with null.span("x"):
            pass

    def test_shared_singleton_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        assert not isinstance(NULL_TRACER, Tracer)

    def test_span_context_is_shared_instance(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")


class TestDeterminism:
    @staticmethod
    def _record(tracer):
        root = tracer.begin("request", t=0.0, conv_id=1)
        for i in range(3):
            tracer.complete("iteration", float(i), float(i) + 0.5, parent=root)
            tracer.count("iterations")
            tracer.gauge("depth", i, t=float(i))
            tracer.instant("tick", t=float(i), i=i)
        tracer.end(root, t=3.0)

    def test_identical_runs_produce_identical_primary_records(self):
        a, b = Tracer(), Tracer()
        self._record(a)
        self._record(b)
        key = lambda t: (
            [(s.id, s.name, s.parent, s.t0, s.t1, s.attrs) for s in t.spans],
            [(n, tt, p, at) for n, tt, _w, p, at in t.instants],
            t.counters,
            [(n, tt, v) for n, tt, _w, v in t.gauge_samples],
        )
        assert key(a) == key(b)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    root = tracer.begin("request", t=0.0, track="requests", conv_id=3)
    tracer.complete("prefill", 0.0, 0.4, parent=root, track="engine", tokens=16)
    tracer.complete("decode", 0.4, 1.2, parent=root, track="engine", tokens=8)
    tracer.instant("evict", t=0.9, track="cache", conv_id=3, tokens=32)
    tracer.count("pcie.h2d_bytes", 4096)
    tracer.gauge("kv.gpu_free_tokens", 128, t=0.5)
    tracer.end(root, t=1.2, outcome="finished")
    return tracer


class TestJsonl:
    def test_round_trip(self):
        tracer = _sample_tracer()
        buf = io.StringIO()
        count = to_jsonl(tracer, buf)
        buf.seek(0)
        records = read_jsonl(buf)
        assert len(records) == count
        assert records[0]["type"] == "meta"
        by_type = {}
        for r in records:
            by_type.setdefault(r["type"], []).append(r)
        assert len(by_type["span"]) == 3
        assert len(by_type["event"]) == 1
        assert len(by_type["gauge"]) == 1
        (counter,) = by_type["counter"]
        assert counter["name"] == "pcie.h2d_bytes"
        assert counter["total"] == 4096
        request = next(r for r in by_type["span"] if r["name"] == "request")
        assert request["attrs"]["outcome"] == "finished"
        assert request["t1"] == 1.2

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        to_jsonl(_sample_tracer(), str(path))
        for line in path.read_text().splitlines():
            json.loads(line)  # raises on malformed output


class TestChromeTrace:
    def test_schema(self, tmp_path):
        path = tmp_path / "t.chrome.json"
        to_chrome_trace(_sample_tracer(), str(path))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events, "chrome trace must not be empty"
        for event in events:
            assert event["ph"] in ("X", "i", "C", "M")
            assert "ts" in event and "pid" in event and "tid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"request", "prefill", "decode"}
        prefill = next(e for e in spans if e["name"] == "prefill")
        # ts may carry a sub-microsecond strict-monotonicity nudge.
        assert 0.0 <= prefill["ts"] < 0.01
        assert prefill["dur"] == pytest.approx(0.4e6)
        # track metadata names each tid
        meta = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"requests", "engine", "cache"} <= meta
        assert document["otherData"]["counters"]["pcie.h2d_bytes"] == 4096

    def test_wall_axis_and_bad_axis(self, tmp_path):
        tracer = _sample_tracer()
        to_chrome_trace(tracer, str(tmp_path / "w.json"), time_axis="wall")
        with pytest.raises(ValueError):
            to_chrome_trace(tracer, str(tmp_path / "x.json"), time_axis="cpu")

    def test_open_spans_export_with_zero_duration(self, tmp_path):
        tracer = Tracer()
        tracer.begin("open", t=1.0, track="engine")
        path = tmp_path / "open.json"
        to_chrome_trace(tracer, str(path))
        (event,) = [
            e for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert event["dur"] == 0.0


class TestTextReport:
    def test_contains_rollups(self):
        report = text_report(_sample_tracer())
        assert "-- stages --" in report
        assert "request" in report and "prefill" in report
        assert "-- conversations (request spans) --" in report
        assert "-- counters --" in report and "pcie.h2d_bytes" in report
        assert "-- gauges --" in report and "kv.gpu_free_tokens" in report


class TestArtifacts:
    def test_write_all_three(self, tmp_path):
        tracer = _sample_tracer()
        tracer.begin("in_flight", t=1.0)
        paths = write_trace_artifacts(tracer, str(tmp_path), close_at=2.0)
        assert set(paths) == {"jsonl", "chrome", "report"}
        for path in paths.values():
            assert (tmp_path / path.split("/")[-1]).exists()
        # close_at sealed the open span before export
        records = read_jsonl(paths["jsonl"])
        in_flight = next(
            r for r in records if r["type"] == "span" and r["name"] == "in_flight"
        )
        assert in_flight["t1"] == 2.0
        assert in_flight["attrs"]["truncated"] is True
