"""SLO-layer reconciliation: histogram totals and flight-recorder event
counts must agree — exactly, not approximately — with the independent
ledgers the engine components keep (PCIe/NVMe transfer histories, cache
manager stats, the metrics collector's request records).

The workload mirrors ``test_disk_reconciliation.py``: small GPU and CPU
tiers with a disk tier behind them, so all four swap paths (CPU/disk,
in/out) are exercised in one run.  The run drains (every conversation
completes before the horizon), which makes the per-request identities
exact:

- every histogram swap sample corresponds to exactly one transfer in the
  PCIe/NVMe history for that tier and direction;
- TTFT samples count requests; TTFT+TBT samples count produced tokens;
- recompute histogram mass equals the cache manager's recomputed-token
  ledger;
- the Prometheus snapshot is self-reconciling: its histogram ``_count``
  series equal the ``ledger.*`` counters embedded in the same artifact.
"""

import json

import pytest

from repro.core.engine import PensieveEngine
from repro.experiments.common import run_serving_once
from repro.gpu.nvme import NvmeDirection
from repro.gpu.pcie import Direction
from repro.obs import (
    FlightRecorder,
    HistogramSet,
    MetricsSampler,
    SloConfig,
    ledger_counters,
    parse_prometheus,
    prometheus_snapshot,
)
from repro.serving import metric_names

from tests.serving.conftest import TINY, scripted_conversation, spec_with_capacity

UNTIL = 200.0


def _workload():
    """Multi-turn conversations that overflow GPU *and* CPU tiers."""
    return [
        scripted_conversation(
            i, [(24, 12), (16, 12), (12, 10)], start=0.05 * i, think=0.3
        )
        for i in range(8)
    ]


def _factory(loop):
    spec = spec_with_capacity(192, cpu_memory_bytes=TINY.kv_bytes_per_token * 96)
    return PensieveEngine(
        loop, TINY, spec, chunk_size=16, policy="lru", disk_cache_tokens=4096
    )


def _run(slo=None, hist=None, flight=None, sampler=None):
    return run_serving_once(
        _factory,
        _workload(),
        until=UNTIL,
        warmup=0.0,
        slo=slo,
        hist=hist,
        flight=flight,
        sampler=sampler,
    )


@pytest.fixture(scope="module")
def armed_run():
    """One SLO-armed run shared by the read-only identity tests."""
    hist, flight = HistogramSet(), FlightRecorder()
    engine, stats = _run(slo=SloConfig(ttft=60.0, tbt=60.0), hist=hist, flight=flight)
    return engine, stats, hist, flight


def _transfers(history, direction):
    return [r for r in history if r.direction is direction]


class TestLedgerIdentities:
    def test_run_drains_and_exercises_every_tier(self, armed_run):
        engine, stats, hist, _ = armed_run
        assert engine.num_waiting == 0 and engine.num_running == 0
        assert not engine.metrics.failures
        assert engine.nvme.bytes_moved[NvmeDirection.READ] > 0
        assert engine.manager.stats["recomputed_tokens"] > 0
        # Every swap histogram × every declared tier label: the registry
        # (not a re-declared literal list) drives the coverage matrix.
        for name in ("swap_in_seconds", "swap_out_seconds"):
            for tier in sorted(metric_names.HISTOGRAM_TIERS):
                found = hist.get(name, tier=tier)
                assert found is not None and found.count > 0, (name, tier)

    def test_cpu_swap_in_count_matches_pcie_and_flight(self, armed_run):
        engine, _, hist, flight = armed_run
        h2d = len(_transfers(engine.pcie.history, Direction.H2D))
        assert hist.get("swap_in_seconds", tier="cpu").count == h2d
        assert flight.event_count("swap_in", tier="cpu") == h2d

    def test_cpu_swap_out_count_matches_pcie(self, armed_run):
        engine, _, hist, flight = armed_run
        d2h = len(_transfers(engine.pcie.history, Direction.D2H))
        assert hist.get("swap_out_seconds", tier="cpu").count == d2h
        # Flight swap-outs are attributed to a suspended request; demand /
        # ahead-of-time background copies have no single owner, so the
        # flight ledger can only undercount — never overcount.
        assert 0 <= flight.event_count("swap_out", tier="cpu") <= d2h

    def test_disk_swap_counts_match_nvme_history(self, armed_run):
        engine, _, hist, flight = armed_run
        reads = len(_transfers(engine.nvme.history, NvmeDirection.READ))
        writes = len(_transfers(engine.nvme.history, NvmeDirection.WRITE))
        assert hist.get("swap_in_seconds", tier="disk").count == reads
        assert flight.event_count("swap_in", tier="disk") == reads
        assert hist.get("swap_out_seconds", tier="disk").count == writes

    def test_recompute_mass_matches_cache_ledger(self, armed_run):
        engine, _, hist, flight = armed_run
        assert hist.total_sum("recompute_tokens") == (
            engine.manager.stats["recomputed_tokens"]
        )
        assert hist.total_count("recompute_tokens") == flight.event_count(
            "recompute"
        )
        assert hist.total_count("recompute_est_seconds") == hist.total_count(
            "recompute_tokens"
        )

    def test_queue_wait_counts_batch_joins(self, armed_run):
        _, _, hist, flight = armed_run
        joins = flight.event_count("batch_join")
        assert joins > 0
        assert hist.get("queue_wait_seconds").count == joins

    def test_token_samples_reconcile_with_records(self, armed_run):
        engine, _, hist, flight = armed_run
        records = engine.metrics.records
        # Drained fault-free run: one TTFT sample per completed request,
        # one sample per produced token across TTFT+TBT.
        assert hist.get("ttft_seconds").count == len(records)
        assert hist.get("ttft_seconds").count + hist.get("tbt_seconds").count == (
            sum(r.output_tokens for r in records)
        )
        assert hist.get("latency_seconds").count == len(records)
        assert flight.event_count("admit") == len(records)
        assert flight.event_count("finish") == len(records)

    def test_record_timelines_bookended(self, armed_run):
        engine, _, _, _ = armed_run
        for record in engine.metrics.records:
            names = [e.event for e in record.events]
            assert names[0] == "admit"
            assert names[-1] == "finish"
            assert "batch_join" in names
            times = [e.t for e in record.events]
            assert times == sorted(times)

    def test_fault_ledger_zero_without_plan(self, armed_run):
        engine, _, _, flight = armed_run
        assert engine.metrics.faults.retries == 0
        assert flight.event_count("retry") == 0
        assert flight.event_count("fault") == 0

    def test_recorded_names_are_declared(self, armed_run):
        """Everything this real run recorded is in the declared registry
        (``repro.serving.metric_names``) — the dynamic complement of the
        static RPR004 lint rule."""
        _, _, hist, flight = armed_run
        declared = metric_names.all_histogram_names()
        for h in hist.all():
            assert h.name in declared, h.name
            tier = h.labels.get("tier")
            assert tier is None or tier in metric_names.HISTOGRAM_TIERS
        seen_events = {key.split(".")[0] for key in flight.event_counts}
        assert seen_events <= metric_names.FLIGHT_EVENTS


class TestPrometheusSelfReconciliation:
    def test_snapshot_counts_equal_embedded_ledgers(self, armed_run):
        engine, _, _, _ = armed_run
        text = prometheus_snapshot(
            collector=engine.metrics, counters=ledger_counters(engine)
        )
        parsed = parse_prometheus(text)
        cpu = (("tier", "cpu"),)
        disk = (("tier", "disk"),)
        assert parsed["repro_swap_in_seconds_count"][cpu] == (
            parsed["repro_ledger_pcie_h2d_transfers_total"][()]
        )
        assert parsed["repro_swap_out_seconds_count"][cpu] == (
            parsed["repro_ledger_pcie_d2h_transfers_total"][()]
        )
        assert parsed["repro_swap_in_seconds_count"][disk] == (
            parsed["repro_ledger_nvme_read_transfers_total"][()]
        )
        assert parsed["repro_swap_out_seconds_count"][disk] == (
            parsed["repro_ledger_nvme_write_transfers_total"][()]
        )
        assert parsed["repro_recompute_tokens_sum"][()] == (
            parsed["repro_ledger_cache_recomputed_tokens_total"][()]
        )
        assert parsed["repro_requests_completed_total"][()] == len(
            engine.metrics.records
        )
        assert parsed["repro_flight_events_batch_join_total"][()] == (
            parsed["repro_queue_wait_seconds_count"][()]
        )

    def test_bucket_series_are_cumulative_and_capped(self, armed_run):
        engine, _, _, _ = armed_run
        parsed = parse_prometheus(prometheus_snapshot(collector=engine.metrics))
        buckets = parsed["repro_ttft_seconds_bucket"]
        finite = sorted(
            (float(dict(labels)["le"]), value)
            for labels, value in buckets.items()
            if dict(labels)["le"] != "+Inf"
        )
        values = [v for _, v in finite]
        assert values == sorted(values)
        inf_key = next(k for k in buckets if dict(k)["le"] == "+Inf")
        assert buckets[inf_key] == parsed["repro_ttft_seconds_count"][()]
        assert values[-1] == buckets[inf_key]


class TestCapturePolicy:
    def test_every_violating_request_has_a_dumped_timeline(self, tmp_path):
        hist, flight = HistogramSet(), FlightRecorder()
        # Unreachably tight objectives: every completion violates.
        engine, stats = _run(
            slo=SloConfig(ttft=1e-6, tbt=1e-6), hist=hist, flight=flight
        )
        collector = engine.metrics
        assert collector.slo_violated_requests
        assert set(collector.slo_violated_requests) <= set(
            flight.captured_request_ids()
        )
        assert len(collector.slo_violated_requests) == len(collector.records)
        assert collector.slo_violations["ttft"] == len(collector.records)
        report = collector.slo_report()
        assert report["violated_requests"] == len(collector.records)
        assert report["captures"] == len(flight.captures)
        path = tmp_path / "captures.jsonl"
        assert flight.dump_captures(path) == len(flight.captures)
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            assert entry["reason"].startswith("slo:")
            assert entry["events"], "captured timeline must not be empty"

    def test_loose_slo_captures_nothing(self, armed_run):
        engine, _, _, flight = armed_run
        assert engine.metrics.slo_violated_requests == []
        assert flight.captures == []


class TestNoPerturbation:
    def test_armed_run_equals_unarmed_run(self):
        """The SLO layer must observe, never perturb: all user-visible
        outputs of an armed run equal the unarmed run's."""
        engine_a, stats_a = _run()
        engine_b, stats_b = _run(
            slo=SloConfig(ttft=0.5, tbt=0.2),
            hist=HistogramSet(),
            flight=FlightRecorder(),
        )
        assert stats_a.as_dict() == stats_b.as_dict()
        assert engine_a.manager.stats == engine_b.manager.stats
        for direction in Direction:
            assert (
                engine_a.pcie.bytes_moved[direction]
                == engine_b.pcie.bytes_moved[direction]
            )
        for direction in NvmeDirection:
            assert (
                engine_a.nvme.bytes_moved[direction]
                == engine_b.nvme.bytes_moved[direction]
            )
        assert engine_a.suspensions == engine_b.suspensions

    def test_unarmed_engine_keeps_null_sinks(self):
        engine, _ = _run()
        assert engine.metrics.hist.enabled is False
        assert engine.metrics.flight.enabled is False
        assert engine.metrics.slo is None


class TestSamplerOnRealRun:
    def test_sampler_rows_track_completions(self, tmp_path):
        hist, flight = HistogramSet(), FlightRecorder()
        sampler = MetricsSampler(interval=1.0, horizon=UNTIL)
        engine, stats = _run(
            slo=SloConfig(ttft=60.0), hist=hist, flight=flight, sampler=sampler
        )
        assert sampler.rows
        assert all(r["t"] <= UNTIL for r in sampler.rows)
        times = [r["t"] for r in sampler.rows]
        assert times == sorted(times)
        assert sampler.rows[-1]["finished"] == len(engine.metrics.records)
        assert "kv_disk_used_tokens" in sampler.rows[-1]
        assert sampler.rows[-1]["ttft_seconds_count"] == (
            hist.get("ttft_seconds").count
        )
        path = tmp_path / "metrics.jsonl"
        lines = sampler.write_jsonl(path)
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(rows) == lines == len(sampler.rows) + 1
        assert rows[0]["format"] == "repro-metrics-jsonl"
        assert all(r["type"] == "sample" for r in rows[1:])
