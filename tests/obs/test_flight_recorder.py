"""Unit tests for the per-request flight recorder and SLO config.

Two properties carry the reconciliation guarantees: the per-request rings
are *bounded* (old events roll off), while the ``event_counts`` ledger is
*exact* and monotonic — it must agree with the engine-side counters no
matter how many ring events were evicted.
"""

import io
import json

import pytest

from repro.obs.flight import (
    FlightEvent,
    FlightRecorder,
    NULL_FLIGHT,
    NullFlightRecorder,
    SloConfig,
)


class TestSloConfig:
    def test_defaults_unarmed(self):
        slo = SloConfig()
        assert slo.ttft is None and slo.tbt is None
        assert not slo.armed
        assert slo.violations(100.0, 100.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SloConfig(ttft=0.0)
        with pytest.raises(ValueError):
            SloConfig(ttft=-1.0)
        with pytest.raises(ValueError):
            SloConfig(tbt=0.0)

    def test_violations_by_kind(self):
        slo = SloConfig(ttft=0.5, tbt=0.1)
        assert slo.armed
        assert slo.violations(0.4, 0.05) == []
        assert slo.violations(0.6, 0.05) == ["ttft"]
        assert slo.violations(0.4, 0.2) == ["tbt"]
        assert slo.violations(0.6, 0.2) == ["ttft", "tbt"]
        # Boundary is inclusive: exactly meeting the objective passes.
        assert slo.violations(0.5, 0.1) == []

    def test_partial_arming(self):
        assert SloConfig(ttft=1.0).violations(2.0, 99.0) == ["ttft"]
        assert SloConfig(tbt=1.0).violations(99.0, 0.5) == []

    def test_as_dict(self):
        assert SloConfig(ttft=0.25).as_dict() == {"ttft": 0.25, "tbt": None}


class TestFlightRecorder:
    def test_record_and_finish_pops_ring(self):
        flight = FlightRecorder()
        flight.record(7, "admit", 0.0, conv_id=3)
        flight.record(7, "batch_join", 0.5)
        events = flight.finish(7)
        assert [e.event for e in events] == ["admit", "batch_join"]
        assert events[0].attrs == {"conv_id": 3}
        assert flight.finish(7) == []  # popped
        assert flight.finish(999) == []  # unknown request tolerated
        assert flight.in_flight == 0

    def test_ring_is_bounded_but_ledger_is_exact(self):
        flight = FlightRecorder(ring_capacity=8)
        for i in range(100):
            flight.record(1, "suspend", float(i))
        events = flight.finish(1)
        assert len(events) == 8
        assert [e.t for e in events] == [float(i) for i in range(92, 100)]
        # Ledger saw every one of the 100 records, evictions included.
        assert flight.event_counts == {"suspend": 100}
        assert flight.event_count("suspend") == 100

    def test_count_parameter_feeds_ledger_once_per_burst(self):
        flight = FlightRecorder()
        flight.record(1, "retry", 0.1, count=3, site="swap_in")
        assert flight.event_count("retry") == 3
        assert len(flight.finish(1)) == 1  # one ring event for the burst

    def test_tier_attribute_shards_ledger_key(self):
        flight = FlightRecorder()
        flight.record(1, "swap_in", 0.1, tier="cpu", tokens=16)
        flight.record(1, "swap_in", 0.2, tier="cpu", tokens=32)
        flight.record(2, "swap_in", 0.3, tier="disk", tokens=64)
        assert flight.event_counts == {"swap_in.cpu": 2, "swap_in.disk": 1}
        assert flight.event_count("swap_in", tier="cpu") == 2
        assert flight.event_count("swap_in", tier="disk") == 1
        assert flight.event_count("swap_in") == 0  # untiered key unused

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(ring_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_captures=0)

    def test_capture_with_explicit_events(self):
        flight = FlightRecorder()
        flight.record(5, "admit", 0.0)
        timeline = flight.finish(5)
        flight.capture(5, "slo:ttft", 1.0, events=timeline, ttft=0.9)
        (entry,) = flight.captures
        assert entry["request_id"] == 5
        assert entry["reason"] == "slo:ttft"
        assert entry["ttft"] == 0.9
        assert entry["events"] == [{"t": 0.0, "event": "admit"}]

    def test_capture_snapshots_live_ring(self):
        flight = FlightRecorder()
        flight.record(5, "admit", 0.0)
        flight.capture(5, "probe", 0.5)
        assert flight.captures[0]["events"][0]["event"] == "admit"
        # Ring stays live after a snapshot capture.
        assert flight.in_flight == 1
        assert len(flight.finish(5)) == 1

    def test_capture_rollover_counts_drops(self):
        flight = FlightRecorder(max_captures=3)
        for i in range(5):
            flight.capture(i, "slo:tbt", float(i))
        assert len(flight.captures) == 3
        assert flight.dropped_captures == 2
        assert flight.captured_request_ids() == [2, 3, 4]

    def test_dump_captures_jsonl(self, tmp_path):
        flight = FlightRecorder()
        flight.record(1, "admit", 0.0)
        flight.capture(1, "failed:gpu_alloc", 2.0, events=flight.finish(1))
        flight.capture(2, "slo:ttft", 3.0)
        path = tmp_path / "captures.jsonl"
        assert flight.dump_captures(path) == 2
        lines = path.read_text().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [r["request_id"] for r in rows] == [1, 2]
        assert rows[0]["events"][0]["event"] == "admit"
        # File-like targets work too.
        buffer = io.StringIO()
        assert flight.dump_captures(buffer) == 2
        assert buffer.getvalue().count("\n") == 2

    def test_event_repr_and_dict(self):
        event = FlightEvent(1.25, "swap_out", {"tier": "cpu"})
        assert event.as_dict() == {"t": 1.25, "event": "swap_out", "tier": "cpu"}
        assert "swap_out" in repr(event)


class TestNullFlight:
    def test_null_recorder_is_freely_callable(self):
        assert NULL_FLIGHT.enabled is False
        assert isinstance(NULL_FLIGHT, NullFlightRecorder)
        NULL_FLIGHT.record(1, "admit", 0.0, conv_id=2)
        NULL_FLIGHT.capture(1, "slo:ttft", 1.0)
        assert NULL_FLIGHT.finish(1) == []
        assert NULL_FLIGHT.event_counts == {}
        assert NULL_FLIGHT.event_count("admit") == 0
        assert NULL_FLIGHT.captures == []
        assert NULL_FLIGHT.dump_captures(io.StringIO()) == 0

    def test_recording_instance_reports_enabled(self):
        assert FlightRecorder().enabled is True
        assert bool(FlightRecorder())
