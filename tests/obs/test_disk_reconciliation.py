"""Disk-tier counter reconciliation: every observability counter the
NVMe engine and the chunk stores emit must equal — exactly, not
approximately — the accounting the components themselves keep.

Three ledgers cover the same traffic and must agree to the byte:

- the tracer counters (``nvme.*``, ``disk_store.*``, ``cache.*``);
- the component accounting (``NvmeEngine.bytes_moved`` / ``history``,
  store ``used_tokens``);
- the eviction-scope stats (``demoted_tokens``, ``disk_hit_tokens``).

Both NVMe paths are exercised: the demotion flush coalesces many chunks
into one stacked write, while admission issues one read per restore —
the per-transfer and per-chunk counters must reconcile for each.
"""

import numpy as np
import pytest

from repro.core.engine import PensieveEngine
from repro.core.server import StatefulChatServer
from repro.experiments.common import run_serving_once
from repro.gpu.nvme import NvmeDirection
from repro.model.config import tiny_opt_config
from repro.obs import Tracer

from tests.serving.conftest import TINY, scripted_conversation, spec_with_capacity


def _workload():
    """Enough multi-turn conversations to overflow GPU *and* CPU tiers."""
    return [
        scripted_conversation(
            i, [(24, 12), (16, 12), (12, 10)], start=0.05 * i, think=0.3
        )
        for i in range(8)
    ]


def _factory(loop):
    spec = spec_with_capacity(192, cpu_memory_bytes=TINY.kv_bytes_per_token * 96)
    return PensieveEngine(
        loop, TINY, spec, chunk_size=16, policy="lru", disk_cache_tokens=4096
    )


def _run(tracer=None):
    return run_serving_once(
        _factory, _workload(), until=60.0, warmup=0.0, tracer=tracer
    )


class TestEngineNvmeReconciliation:
    def test_byte_counters_match_engine_accounting(self):
        tracer = Tracer()
        engine, _ = _run(tracer)
        assert engine.nvme.bytes_moved[NvmeDirection.WRITE] > 0
        assert engine.nvme.bytes_moved[NvmeDirection.READ] > 0
        assert tracer.counter("nvme.write_bytes") == engine.nvme.bytes_moved[
            NvmeDirection.WRITE
        ]
        assert tracer.counter("nvme.read_bytes") == engine.nvme.bytes_moved[
            NvmeDirection.READ
        ]

    def test_byte_counters_match_eviction_scope(self):
        """NVMe traffic is priced from the same token counts the eviction
        scope records: demotions write, disk restores read."""
        tracer = Tracer()
        engine, _ = _run(tracer)
        kv = TINY.kv_bytes_per_token
        stats = engine.manager.stats
        assert tracer.counter("nvme.write_bytes") == stats["demoted_tokens"] * kv
        assert tracer.counter("nvme.read_bytes") == stats["disk_hit_tokens"] * kv

    def test_transfer_and_chunk_counters_match_history(self):
        """Coalescing must not distort the ledgers: N demoted chunks in
        one stacked write still count N chunks but one transfer."""
        tracer = Tracer()
        engine, _ = _run(tracer)
        history = engine.nvme.history
        writes = [r for r in history if r.direction is NvmeDirection.WRITE]
        reads = [r for r in history if r.direction is NvmeDirection.READ]
        assert tracer.counter("nvme.write_transfers") == len(writes)
        assert tracer.counter("nvme.read_transfers") == len(reads)
        assert tracer.counter("nvme.write_chunks") == sum(
            r.num_chunks for r in writes
        )
        assert tracer.counter("nvme.read_chunks") == sum(
            r.num_chunks for r in reads
        )
        # Coalescing actually happened: fewer transfers than chunks.
        assert len(writes) < sum(r.num_chunks for r in writes)

    def test_cache_counters_mirror_disk_stats(self):
        tracer = Tracer()
        engine, _ = _run(tracer)
        for key in ("demoted_tokens", "disk_hit_tokens"):
            assert engine.manager.stats[key] > 0
            assert tracer.counter(f"cache.{key}") == engine.manager.stats[key]

    def test_disk_gauge_sampled(self):
        tracer = Tracer()
        _run(tracer)
        names = {g[0] for g in tracer.gauge_samples}
        assert "kv.disk_used_tokens" in names

    def test_tracing_does_not_perturb_disk_path(self):
        engine_a, stats_a = _run(tracer=None)
        engine_b, stats_b = _run(tracer=Tracer())
        assert stats_a.as_dict() == stats_b.as_dict()
        assert engine_a.manager.stats == engine_b.manager.stats
        for direction in NvmeDirection:
            assert (
                engine_a.nvme.bytes_moved[direction]
                == engine_b.nvme.bytes_moved[direction]
            )


class TestServerStoreReconciliation:
    def _walk(self, tracer):
        config = tiny_opt_config()
        server = StatefulChatServer(
            config,
            gpu_capacity_tokens=192,
            cpu_capacity_tokens=96,
            disk_capacity_tokens=2048,
            chunk_size=16,
            page_size=8,
            seed=0,
            tracer=tracer,
        )
        rng = np.random.default_rng(0)
        outputs = []
        for _ in range(20):
            conv = int(rng.integers(0, 6))
            prompt = [
                int(t)
                for t in rng.integers(1, config.vocab_size, size=rng.integers(8, 20))
            ]
            outputs.append(
                server.chat(
                    conv, prompt_ids=prompt,
                    max_new_tokens=int(rng.integers(2, 9)),
                )
            )
        return server, config, outputs

    def test_store_byte_counters_match_token_stats(self):
        tracer = Tracer()
        server, config, _ = self._walk(tracer)
        stats = server.manager.stats
        assert stats["demoted_tokens"] > 0 and stats["disk_hit_tokens"] > 0
        # The functional stores hold fp32 tensors while the model config
        # prices fp16 deployment state; scale accordingly.
        bytes_per_token = (
            config.kv_bytes_per_token
            // config.dtype_bytes
            * np.dtype(np.float32).itemsize
        )
        assert tracer.counter("cpu_store.demoted_tokens") == stats["demoted_tokens"]
        assert (
            tracer.counter("disk_store.put_bytes")
            == stats["demoted_tokens"] * bytes_per_token
        )
        assert (
            tracer.counter("disk_store.read_bytes")
            == stats["disk_hit_tokens"] * bytes_per_token
        )

    def test_store_gauges_track_live_occupancy(self):
        tracer = Tracer()
        server, _, _ = self._walk(tracer)
        samples = [
            g for g in tracer.gauge_samples if g[0] == "disk_store.used_tokens"
        ]
        assert samples
        assert samples[-1][-1] == server.disk_store.used_tokens
        assert server.disk_store.used_tokens == server.manager.disk_used_tokens

    def test_tracing_does_not_perturb_server_outputs(self):
        _, _, untraced = self._walk(None)
        server, _, traced = self._walk(Tracer())
        assert traced == untraced
        assert server.manager.stats["demoted_tokens"] > 0
