"""Exporter robustness: Chrome traces that always load, Prometheus text
that always parses, and the duck-typed ledger reader.

The Chrome trace guarantees under test (viewers reject violations of
any of them):

- the document is valid JSON even with spans still open at export time
  (closed on export, marked ``truncated``, tracer left unmutated);
- every ``ts`` is non-negative and the event array is strictly
  monotonic, whatever order (or sign) the source timestamps had;
- thread-name metadata precedes all real events.
"""

import io
import json

import pytest

from repro.obs import (
    MetricsSampler,
    Tracer,
    ledger_counters,
    parse_prometheus,
    prometheus_snapshot,
    span_summary,
    tier_attribution_table,
    to_chrome_trace,
)
from repro.obs.export import read_jsonl, to_jsonl
from repro.obs.histogram import NULL_HISTOGRAMS, HistogramSet


def _chrome(tracer, time_axis="sim"):
    buffer = io.StringIO()
    document = to_chrome_trace(tracer, buffer, time_axis=time_axis)
    # The write path and the returned document agree.
    assert json.loads(buffer.getvalue()) == json.loads(json.dumps(document))
    return document


class TestChromeTraceRobustness:
    def test_open_spans_closed_on_export_only(self):
        tracer = Tracer()
        done = tracer.begin("prefill", t=0.0)
        tracer.end(done, t=1.0)
        tracer.begin("request", t=0.5, conv_id=3)  # never ended
        tracer.instant("evict", t=2.0)
        document = _chrome(tracer)
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        truncated = [e for e in spans if e["args"].get("truncated")]
        assert len(truncated) == 1
        assert truncated[0]["name"] == "request"
        # Closed at the trace horizon (t=2.0 instant), not at zero.
        assert truncated[0]["dur"] == pytest.approx((2.0 - 0.5) * 1e6)
        # The tracer itself was not mutated by exporting.
        assert tracer.spans_named("request")[0].t1 is None

    def test_ts_strictly_monotonic_and_non_negative(self):
        tracer = Tracer()
        # Deliberately hostile: negative, duplicate, and reverse-ordered
        # timestamps across event kinds.
        tracer.complete("a", -1.0, -0.5)
        tracer.complete("b", 3.0, 4.0)
        tracer.complete("c", 3.0, 3.5)
        tracer.instant("tie", t=3.0)
        tracer.instant("tie", t=3.0)
        tracer.gauge("queue", 5.0, t=0.0)
        tracer.gauge("queue", 6.0, t=0.0)
        document = _chrome(tracer)
        stamps = [e["ts"] for e in document["traceEvents"]]
        assert all(ts >= 0.0 for ts in stamps)
        assert all(b > a for a, b in zip(stamps, stamps[1:]))
        durations = [e["dur"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert all(d >= 0.0 for d in durations)

    def test_meta_events_lead_the_array(self):
        tracer = Tracer()
        tracer.complete("step", 0.0, 1.0, track="engine")
        tracer.complete("copy", 0.2, 0.8, track="cache")
        events = _chrome(tracer)["traceEvents"]
        kinds = [e["ph"] for e in events]
        first_real = kinds.index("X")
        assert set(kinds[:first_real]) == {"M"}
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"engine", "cache"}

    def test_empty_tracer_still_valid(self):
        document = _chrome(Tracer())
        assert document["traceEvents"] == []
        assert document["otherData"]["format"] == "repro-trace-chrome"

    def test_wall_axis_and_bad_axis(self):
        tracer = Tracer()
        tracer.complete("x", 0.0, 1.0)
        assert _chrome(tracer, time_axis="wall")["otherData"]["timeAxis"] == "wall"
        with pytest.raises(ValueError):
            to_chrome_trace(tracer, io.StringIO(), time_axis="gpu")

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        span = tracer.begin("request", t=0.0, conv_id=1)
        tracer.end(span, t=2.0)
        tracer.count("pcie.h2d_bytes", 4096)
        buffer = io.StringIO()
        assert to_jsonl(tracer, buffer) == 3  # meta + span + counter
        buffer.seek(0)
        records = read_jsonl(buffer)
        assert records[0]["format"] == "repro-trace-jsonl"
        by_type = {r["type"] for r in records}
        assert by_type == {"meta", "span", "counter"}
        counter = next(r for r in records if r["type"] == "counter")
        assert counter == {"type": "counter", "name": "pcie.h2d_bytes",
                           "total": 4096}


class TestSpanSummary:
    def test_empty_tracer(self):
        assert "(no closed spans)" in span_summary(Tracer())

    def test_aggregates_and_slowest(self):
        tracer = Tracer()
        tracer.complete("decode", 0.0, 0.1)
        tracer.complete("decode", 0.1, 0.3)
        tracer.complete("prefill", 0.0, 1.5, request_id=7, tokens=128)
        tracer.begin("request", t=0.0)  # open: excluded, but reported
        text = span_summary(tracer, top=2)
        assert "per-span-name aggregate" in text
        assert "top 2 slowest spans" in text
        assert "request_id=7" in text and "tokens=128" in text
        assert "(+1 spans still open, excluded)" in text
        # prefill dominates total time, so it leads the table and chart.
        agg_lines = [l for l in text.splitlines() if l.startswith(("prefill", "decode"))]
        assert agg_lines[0].startswith("prefill")


class TestPrometheusRoundTrip:
    def test_histogram_exposition_round_trips(self):
        hists = HistogramSet()
        hists.hist("ttft_seconds").record_many([0.01, 0.05, 0.2])
        hists.hist("swap_in_seconds", tier="cpu").record(0.003)
        text = prometheus_snapshot(hists=hists, namespace="repro")
        parsed = parse_prometheus(text)
        assert parsed["repro_ttft_seconds_count"][()] == 3
        assert parsed["repro_ttft_seconds_sum"][()] == pytest.approx(0.26)
        cpu = (("tier", "cpu"),)
        assert parsed["repro_swap_in_seconds_count"][cpu] == 1
        inf_rows = [
            v
            for labels, v in parsed["repro_ttft_seconds_bucket"].items()
            if dict(labels)["le"] == "+Inf"
        ]
        assert inf_rows == [3]

    def test_counters_and_gauges_without_collector(self):
        text = prometheus_snapshot(
            counters={"ledger.pcie.h2d_transfers": 7},
            gauges={"slo_ttft_seconds": 0.5},
        )
        parsed = parse_prometheus(text)
        assert parsed["repro_ledger_pcie_h2d_transfers_total"][()] == 7
        assert parsed["repro_slo_ttft_seconds"][()] == 0.5

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_ok 1\nthis is { not a metric\n")
        # Comments and blanks are fine.
        assert parse_prometheus("# HELP x y\n\nrepro_ok 1\n") == {
            "repro_ok": {(): 1.0}
        }

    def test_null_hists_contribute_nothing(self):
        assert "bucket" not in prometheus_snapshot(hists=NULL_HISTOGRAMS)


class TestTierAttributionTable:
    def test_empty_inputs_render_empty_string(self):
        assert tier_attribution_table(None) == ""
        assert tier_attribution_table(NULL_HISTOGRAMS) == ""
        assert tier_attribution_table(HistogramSet()) == ""
        empty_recorded = HistogramSet()
        empty_recorded.hist("ttft_seconds")  # created but never recorded
        assert tier_attribution_table(empty_recorded) == ""

    def test_rows_per_label_variant(self):
        hists = HistogramSet()
        hists.hist("swap_in_seconds", tier="cpu").record(0.01)
        hists.hist("swap_in_seconds", tier="disk").record(0.04)
        text = tier_attribution_table(hists, title="-- attribution --")
        assert text.startswith("-- attribution --")
        assert "swap_in_seconds{tier=cpu}" in text
        assert "swap_in_seconds{tier=disk}" in text
        assert "p99" in text


class TestLedgerCounters:
    def test_bare_object_yields_nothing(self):
        assert ledger_counters(object()) == {}

    def test_duck_typed_ledgers(self):
        class _Dir:
            def __init__(self, value):
                self.value = value

        H2D, D2H = _Dir("h2d"), _Dir("d2h")

        class _Record:
            def __init__(self, direction):
                self.direction = direction

        class _Pcie:
            history = [_Record(H2D), _Record(H2D), _Record(D2H)]
            bytes_moved = {H2D: 4096, D2H: 1024}

        class _Engine:
            pcie = _Pcie()

        counters = ledger_counters(_Engine())
        assert counters["ledger.pcie.h2d_transfers"] == 2
        assert counters["ledger.pcie.d2h_transfers"] == 1
        assert counters["ledger.pcie.h2d_bytes"] == 4096
        assert "ledger.nvme.read_transfers" not in counters


class TestMetricsSampler:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            MetricsSampler(interval=0.0)

    def test_write_jsonl_meta_line(self, tmp_path):
        sampler = MetricsSampler(interval=0.5, horizon=10.0)
        sampler.rows.append({"type": "sample", "t": 0.0, "finished": 0})
        path = tmp_path / "m.jsonl"
        assert sampler.write_jsonl(path) == 2
        meta, row = [json.loads(l) for l in path.read_text().splitlines()]
        assert meta["format"] == "repro-metrics-jsonl"
        assert meta["interval"] == 0.5 and meta["horizon"] == 10.0
        assert row["finished"] == 0
