"""Unit tests for the streaming log-bucketed histograms.

The contract the SLO layer relies on: exact count/sum/min/max under any
recording order, percentile bounds within one bucket width, loss-free
merging, and an allocation-free disabled path.
"""

import json
import math

import numpy as np
import pytest

from repro.obs.histogram import (
    DEFAULT_BASE,
    Histogram,
    HistogramSet,
    NULL_HISTOGRAM,
    NULL_HISTOGRAMS,
    NullHistogram,
    NullHistogramSet,
)


class TestHistogram:
    def test_exact_scalars(self):
        hist = Histogram("latency")
        values = [0.001, 0.5, 0.002, 3.25, 0.001]
        for value in values:
            hist.record(value)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.min == min(values)
        assert hist.max == max(values)
        assert hist.mean == pytest.approx(sum(values) / len(values))
        assert len(hist) == len(values)

    def test_empty_histogram_reports_zeros(self):
        hist = Histogram("empty")
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.min == 0.0 and hist.max == 0.0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.buckets() == []
        assert hist.cumulative_buckets() == []

    def test_underflow_bucket(self):
        hist = Histogram("tiny", min_value=1e-6)
        hist.record(0.0)
        hist.record(-1.0)  # defensive clamp, never raises
        hist.record(1e-9)
        assert hist.count == 3
        buckets = hist.buckets()
        assert len(buckets) == 1
        assert buckets[0] == (1e-6, 3)

    def test_bucket_bounds_contain_samples(self):
        hist = Histogram("bounds")
        rng = np.random.default_rng(0)
        for value in rng.lognormal(mean=-3.0, sigma=2.0, size=500):
            hist.record(float(value))
        running = 0
        prev_upper = 0.0
        for upper, count in hist.buckets():
            assert upper > prev_upper
            assert count > 0
            prev_upper = upper
            running += count
        assert running == hist.count
        # Cumulative view agrees with the per-bucket view.
        assert hist.cumulative_buckets()[-1] == (prev_upper, hist.count)

    def test_percentile_within_one_bucket_of_truth(self):
        rng = np.random.default_rng(1)
        values = [float(v) for v in rng.lognormal(-2.0, 1.5, size=2000)]
        hist = Histogram("p")
        hist.record_many(values)
        for q in (50, 90, 99):
            true = float(np.percentile(values, q, method="inverted_cdf"))
            reported = hist.percentile(q)
            # Upper bound, at most one bucket width above the truth.
            assert true <= reported * (1 + 1e-12)
            assert reported <= true * DEFAULT_BASE * (1 + 1e-12)

    def test_percentile_100_is_exact_max(self):
        hist = Histogram("max")
        hist.record_many([0.1, 0.7, 0.03])
        assert hist.percentile(100) == 0.7
        assert hist.p99 <= 0.7

    def test_percentile_validation(self):
        hist = Histogram("q")
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Histogram("x", min_value=0.0)
        with pytest.raises(ValueError):
            Histogram("x", base=1.0)
        with pytest.raises(ValueError):
            Histogram("x", clock="cpu")

    def test_exact_boundary_lands_in_lower_bucket(self):
        hist = Histogram("edge", min_value=1.0, base=2.0)
        hist.record(2.0)  # exactly the upper bound of bucket 1
        assert hist.buckets() == [(2.0, 1)]

    def test_merge_equals_single_recording(self):
        rng = np.random.default_rng(2)
        values = [float(v) for v in rng.lognormal(-2.0, 1.0, size=400)]
        merged = Histogram("a")
        merged.record_many(values[:150])
        other = Histogram("b")
        other.record_many(values[150:])
        merged.merge(other)
        reference = Histogram("ref")
        reference.record_many(values)
        assert merged.count == reference.count
        assert merged.sum == pytest.approx(reference.sum)
        assert merged.buckets() == reference.buckets()
        assert merged.min == reference.min and merged.max == reference.max
        for q in (50, 90, 99, 100):
            assert merged.percentile(q) == reference.percentile(q)

    def test_merge_empty_keeps_min_max(self):
        hist = Histogram("a")
        hist.record(0.5)
        hist.merge(Histogram("b"))
        assert hist.min == 0.5 and hist.max == 0.5

    def test_incompatible_merge_raises(self):
        base = Histogram("a")
        for other in (
            Histogram("b", min_value=1e-3),
            Histogram("b", base=2.0),
            Histogram("b", clock="wall"),
        ):
            assert not base.compatible(other)
            with pytest.raises(ValueError):
                base.merge(other)

    def test_as_dict_json_serializable(self):
        hist = Histogram("h", labels={"tier": "cpu"}, clock="wall")
        hist.record_many([0.01, 0.2])
        payload = hist.as_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["name"] == "h"
        assert back["labels"] == {"tier": "cpu"}
        assert back["clock"] == "wall"
        assert back["count"] == 2
        assert back["max"] == 0.2


class TestHistogramSet:
    def test_hist_is_get_or_create(self):
        hists = HistogramSet()
        a = hists.hist("ttft_seconds")
        b = hists.hist("ttft_seconds")
        assert a is b
        assert len(hists) == 1

    def test_labels_key_distinct_histograms(self):
        hists = HistogramSet()
        cpu = hists.hist("swap_in_seconds", tier="cpu")
        disk = hists.hist("swap_in_seconds", tier="disk")
        assert cpu is not disk
        cpu.record(0.1)
        assert hists.get("swap_in_seconds", tier="cpu") is cpu
        assert hists.get("swap_in_seconds", tier="gpu") is None
        assert hists.get("never_recorded") is None

    def test_named_and_totals(self):
        hists = HistogramSet()
        hists.hist("swap_in_seconds", tier="cpu").record_many([0.1, 0.2])
        hists.hist("swap_in_seconds", tier="disk").record(0.4)
        hists.hist("ttft_seconds").record(0.05)
        assert len(hists.named("swap_in_seconds")) == 2
        assert hists.total_count("swap_in_seconds") == 3
        assert hists.total_sum("swap_in_seconds") == pytest.approx(0.7)
        assert hists.total_count("missing") == 0
        assert hists.total_sum("missing") == 0.0

    def test_all_is_sorted_and_stable(self):
        hists = HistogramSet()
        hists.hist("b")
        hists.hist("a", tier="z")
        hists.hist("a", tier="c")
        names = [(h.name, h.labels.get("tier")) for h in hists.all()]
        assert names == [("a", "c"), ("a", "z"), ("b", None)]
        assert list(hists) == hists.all()

    def test_merge_from_creates_and_adds(self):
        target = HistogramSet()
        target.hist("ttft_seconds").record(0.1)
        source = HistogramSet()
        source.hist("ttft_seconds").record(0.2)
        source.hist("queue_wait_seconds").record(0.3)
        target.merge_from(source)
        assert target.total_count("ttft_seconds") == 2
        assert target.total_count("queue_wait_seconds") == 1
        # Merging a null set is a no-op, not an error.
        target.merge_from(NULL_HISTOGRAMS)
        assert target.total_count("ttft_seconds") == 2

    def test_set_is_truthy_even_when_empty(self):
        assert bool(HistogramSet())


class TestNullPath:
    def test_null_set_is_disabled_and_freely_callable(self):
        assert NULL_HISTOGRAMS.enabled is False
        assert isinstance(NULL_HISTOGRAMS, NullHistogramSet)
        handle = NULL_HISTOGRAMS.hist("anything", tier="cpu")
        assert handle is NULL_HISTOGRAM
        handle.record(1.0)
        handle.record_many([1.0, 2.0])
        assert handle.count == 0 and handle.sum == 0.0
        assert handle.percentile(99) == 0.0
        assert NULL_HISTOGRAMS.get("anything") is None
        assert NULL_HISTOGRAMS.all() == []
        assert NULL_HISTOGRAMS.total_count("anything") == 0
        assert len(NULL_HISTOGRAMS) == 0
        assert list(NULL_HISTOGRAMS) == []

    def test_null_histogram_shares_read_api(self):
        null = NullHistogram()
        assert null.buckets() == []
        assert null.cumulative_buckets() == []
        assert null.p50 == null.p90 == null.p99 == 0.0
        assert len(null) == 0
        json.dumps(null.as_dict())

    def test_recording_set_reports_enabled(self):
        assert HistogramSet().enabled is True
        assert Histogram("x") is not None  # smoke: importable surface
        assert math.isfinite(DEFAULT_BASE)
