"""Null-path overhead guard: with the SLO layer disabled, the serving
hot loop must not even *call into* the null sinks.

The null tracer's contract (ARCHITECTURE.md §9) extends to histograms
and the flight recorder: every instrumentation site guards on
``.enabled`` before computing sample values, so the disabled path does
zero work — no method dispatch, no dict lookups, no allocations.  This
test pins that guarantee deterministically by spying on the shared null
singletons during a full unarmed serving run; the wall-clock companion
lives in ``benchmarks/perf/test_null_metrics_overhead.py``.
"""

from repro.core.engine import PensieveEngine
from repro.experiments.common import run_serving_once
from repro.obs.flight import NULL_FLIGHT
from repro.obs.histogram import NULL_HISTOGRAM, NULL_HISTOGRAMS

from tests.serving.conftest import TINY, scripted_conversation, spec_with_capacity


def _workload():
    return [
        scripted_conversation(i, [(24, 12), (16, 12)], start=0.05 * i, think=0.2)
        for i in range(6)
    ]


def _factory(loop):
    spec = spec_with_capacity(256)
    return PensieveEngine(loop, TINY, spec, chunk_size=16, policy="lru")


class TestNullSinksNeverInvoked:
    def test_unarmed_run_makes_zero_sink_calls(self, monkeypatch):
        calls = {"hist": 0, "record": 0, "finish": 0, "capture": 0}

        def spy(name, original):
            def wrapped(*args, **kwargs):
                calls[name] += 1
                return original(*args, **kwargs)

            return wrapped

        monkeypatch.setattr(
            type(NULL_HISTOGRAMS), "hist", spy("hist", type(NULL_HISTOGRAMS).hist)
        )
        monkeypatch.setattr(
            type(NULL_FLIGHT), "record", spy("record", type(NULL_FLIGHT).record)
        )
        monkeypatch.setattr(
            type(NULL_FLIGHT), "finish", spy("finish", type(NULL_FLIGHT).finish)
        )
        monkeypatch.setattr(
            type(NULL_FLIGHT), "capture", spy("capture", type(NULL_FLIGHT).capture)
        )
        engine, stats = run_serving_once(_factory, _workload(), until=40.0)
        assert stats.num_requests > 0  # the run actually served traffic
        assert calls == {"hist": 0, "record": 0, "finish": 0, "capture": 0}

    def test_unarmed_collector_shares_the_singletons(self):
        engine, _ = run_serving_once(_factory, _workload(), until=40.0)
        # Shared process-wide singletons: arming one run can never have
        # allocated per-engine null objects.
        assert engine.metrics.hist is NULL_HISTOGRAMS
        assert engine.metrics.flight is NULL_FLIGHT
        assert NULL_HISTOGRAMS.hist("anything") is NULL_HISTOGRAM
