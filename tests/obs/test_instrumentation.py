"""Pipeline instrumentation tests: spans from real runs, counter
reconciliation against the cost/transfer models, and the no-perturbation
guarantee of the null tracer."""

import json

import pytest

from repro.core.engine import PensieveEngine
from repro.core.server import StatefulChatServer
from repro.experiments.common import run_serving_once
from repro.gpu.pcie import Direction
from repro.obs import Tracer, write_trace_artifacts

from tests.serving.conftest import TINY, scripted_conversation, spec_with_capacity


def _workload(n_convs: int = 6):
    """Multi-turn conversations sized to overflow a 256-token GPU tier."""
    return [
        scripted_conversation(
            i,
            [(24, 12), (16, 12)],
            start=0.05 * i,
            think=0.2,
        )
        for i in range(n_convs)
    ]


def _factory(tracer_capacity: int = 256):
    spec = spec_with_capacity(tracer_capacity)
    return lambda loop: PensieveEngine(
        loop, TINY, spec, chunk_size=16, policy="lru"
    )


def _run(tracer=None):
    return run_serving_once(
        _factory(), _workload(), until=40.0, warmup=0.0, tracer=tracer
    )


class TestEngineSpans:
    def test_request_spans_cover_lifecycle(self):
        tracer = Tracer()
        engine, stats = _run(tracer)
        requests = tracer.spans_named("request")
        assert len(requests) == stats.num_requests + stats.num_failed or requests
        finished = [s for s in requests if s.attrs.get("outcome") == "finished"]
        assert finished, "expected finished request spans"
        for span in finished:
            assert span.t1 is not None and span.t1 >= span.t0
            assert "conv_id" in span.attrs and "output_tokens" in span.attrs
        # iterations carry prefill/decode children
        iterations = tracer.spans_named("iteration")
        assert iterations
        children = {s.parent for s in tracer.spans if s.name in ("prefill", "decode")}
        assert children & {s.id for s in iterations}

    def test_swap_and_evict_events_under_pressure(self):
        tracer = Tracer()
        engine, _ = _run(tracer)
        assert engine.manager.stats["swapped_out_tokens"] > 0, (
            "workload must pressure the cache for this test to be meaningful"
        )
        assert tracer.spans_named("swap_out")
        evicts = [i for i in tracer.instants if i[0] == "evict"]
        assert evicts
        for _name, _t, _wall, _parent, attrs in evicts:
            assert "tokens" in attrs and "conv_id" in attrs

    def test_kv_pool_gauges_sampled(self):
        tracer = Tracer()
        _run(tracer)
        gauge_names = {g[0] for g in tracer.gauge_samples}
        assert {
            "kv.gpu_resident_tokens",
            "kv.gpu_free_tokens",
            "kv.reclaimable_tokens",
            "kv.evictable_tokens",
            "kv.cpu_used_tokens",
            "kv.fragmentation_tokens",
            "batch.size",
            "queue.waiting",
        } <= gauge_names

    def test_determinism_on_primary_clock(self):
        def key(tracer):
            return (
                [(s.id, s.name, s.parent, s.t0, s.t1, s.attrs) for s in tracer.spans],
                [(n, t, p, a) for n, t, _w, p, a in tracer.instants],
                tracer.counters,
                [(n, t, v) for n, t, _w, v in tracer.gauge_samples],
            )

        a, b = Tracer(), Tracer()
        _run(a)
        _run(b)
        assert key(a) == key(b)


class TestReconciliation:
    def test_pcie_byte_counters_match_transfer_model(self):
        tracer = Tracer()
        engine, _ = _run(tracer)
        assert tracer.counter("pcie.h2d_bytes") == pytest.approx(
            engine.pcie.bytes_moved[Direction.H2D]
        )
        assert tracer.counter("pcie.d2h_bytes") == pytest.approx(
            engine.pcie.bytes_moved[Direction.D2H]
        )
        assert engine.pcie.bytes_moved[Direction.D2H] > 0

    def test_cache_counters_mirror_manager_stats(self):
        tracer = Tracer()
        engine, _ = _run(tracer)
        for key in (
            "swapped_out_tokens",
            "dropped_tokens",
            "gpu_hit_tokens",
            "lookup_tokens",
            "recomputed_tokens",
        ):
            assert tracer.counter(f"cache.{key}") == engine.manager.stats[key]

    def test_finished_counter_matches_stats(self):
        tracer = Tracer()
        _engine, stats = _run(tracer)
        assert tracer.counter("requests.finished") == stats.num_requests


class TestNoPerturbation:
    def test_traced_run_equals_untraced_run(self):
        """Tracing must observe, never perturb: all user-visible outputs
        of a traced run are identical to the untraced run."""
        engine_a, stats_a = _run(tracer=None)
        engine_b, stats_b = _run(tracer=Tracer())
        assert stats_a.as_dict() == stats_b.as_dict()
        assert engine_a.manager.stats == engine_b.manager.stats
        assert (
            engine_a.pcie.bytes_moved[Direction.H2D]
            == engine_b.pcie.bytes_moved[Direction.H2D]
        )
        assert (
            engine_a.pcie.bytes_moved[Direction.D2H]
            == engine_b.pcie.bytes_moved[Direction.D2H]
        )
        assert engine_a.suspensions == engine_b.suspensions

    def test_functional_server_output_unchanged_under_tracing(self):
        def outputs(tracer):
            server = StatefulChatServer(
                gpu_capacity_tokens=128,
                cpu_capacity_tokens=256,
                chunk_size=16,
                page_size=8,
                seed=3,
                tracer=tracer,
            )
            out = []
            for turn in range(2):
                for conv in range(3):
                    out.append(
                        (conv, server.chat(conv, prompt_ids=[5, 6, 7, 8],
                                           max_new_tokens=6))
                    )
            return out

        assert outputs(None) == outputs(Tracer())


class TestFunctionalServerSpans:
    def test_chat_emits_request_prefill_decode(self):
        tracer = Tracer()
        server = StatefulChatServer(
            gpu_capacity_tokens=128,
            cpu_capacity_tokens=256,
            chunk_size=16,
            page_size=8,
            tracer=tracer,
        )
        server.chat(1, prompt_ids=[3, 4, 5], max_new_tokens=4)
        names = {s.name for s in tracer.spans}
        assert {"request", "prefill", "decode"} <= names
        request = tracer.spans_named("request")[0]
        assert request.attrs["outcome"] == "finished"
        children = {s.name for s in tracer.spans if s.parent == request.id}
        assert {"prefill", "decode"} <= children
        assert tracer.counter("requests.finished") == 1

    def test_cpu_store_counters_under_eviction(self):
        tracer = Tracer()
        server = StatefulChatServer(
            gpu_capacity_tokens=64,
            cpu_capacity_tokens=512,
            chunk_size=16,
            page_size=8,
            tracer=tracer,
        )
        for conv in range(4):
            server.chat(conv, prompt_ids=list(range(2, 20)), max_new_tokens=8)
        assert tracer.counter("cpu_store.put_chunks") > 0
        assert tracer.counter("cpu_store.put_bytes") > 0


class TestArtifactsFromRealRun:
    def test_trace_artifacts_validate(self, tmp_path):
        tracer = Tracer()
        engine, _ = _run(tracer)
        paths = write_trace_artifacts(tracer, str(tmp_path))
        document = json.loads((tmp_path / "trace.chrome.json").read_text())
        events = document["traceEvents"]
        span_names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"prefill", "decode", "swap_out", "request"} <= span_names
        for event in events:
            assert "ph" in event and "ts" in event and "pid" in event
        # JSONL counter records reconcile with the transfer model
        counters = {
            r["name"]: r["total"]
            for r in map(json.loads, (tmp_path / "trace.jsonl").read_text().splitlines())
            if r.get("type") == "counter"
        }
        assert counters["pcie.d2h_bytes"] == pytest.approx(
            engine.pcie.bytes_moved[Direction.D2H]
        )
        assert counters["cache.swapped_out_tokens"] == (
            engine.manager.stats["swapped_out_tokens"]
        )
        assert set(paths) == {"jsonl", "chrome", "report"}
