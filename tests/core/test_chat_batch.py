"""Tests for unified batched serving on the functional server."""

import numpy as np
import pytest

from repro.core import StatefulChatServer
from repro.model import tiny_llama_config, tiny_opt_config
from repro.model.sampling import SamplingParams


def make_server(config, gpu=512, cpu=1024, seed=1):
    return StatefulChatServer(
        config, gpu_capacity_tokens=gpu, cpu_capacity_tokens=cpu,
        chunk_size=16, page_size=8, seed=seed,
    )


@pytest.fixture(params=["opt", "llama"])
def config(request):
    return tiny_opt_config() if request.param == "opt" else tiny_llama_config()


def random_round(rng, num_convs, lo=4, hi=12):
    return [
        (conv, list(rng.integers(4, 120, int(rng.integers(lo, hi)))))
        for conv in range(num_convs)
    ]


class TestBatchedEqualsSequential:
    def test_single_round(self, config):
        """One unified batch produces exactly what sequential serving
        produces (greedy decoding): batching is math-invisible."""
        rng = np.random.default_rng(51)
        prompts = random_round(rng, 4)
        batched = make_server(config).chat_batch(prompts, max_new_tokens=5)
        sequential_server = make_server(config)
        sequential = {
            conv: sequential_server.chat(conv, prompt_ids=ids, max_new_tokens=5)
            for conv, ids in prompts
        }
        assert batched == sequential

    def test_multi_round_with_returning_conversations(self, config):
        """Batches mixing fresh prefills with returning conversations
        (the §4.2 unified case) stay equivalent across rounds."""
        rng = np.random.default_rng(53)
        rounds = [random_round(rng, 3) for _ in range(3)]
        batch_server = make_server(config)
        seq_server = make_server(config)
        for prompts in rounds:
            batched = batch_server.chat_batch(prompts, max_new_tokens=4)
            sequential = {
                conv: seq_server.chat(conv, prompt_ids=ids, max_new_tokens=4)
                for conv, ids in prompts
            }
            assert batched == sequential

    def test_batched_under_memory_pressure(self, config):
        """Unified batching composes with eviction: serving one group's
        batch evicts the *other* group's cached contexts (batch members
        themselves are pinned), and a tight server still matches a roomy
        one token-for-token."""
        rng = np.random.default_rng(57)
        rounds = []
        for round_idx in range(6):
            group = (round_idx % 2) * 3  # alternate convs {0,1,2} / {3,4,5}
            rounds.append(
                [
                    (group + i, list(rng.integers(4, 120, int(rng.integers(4, 14)))))
                    for i in range(3)
                ]
            )
        tight = make_server(config, gpu=144, cpu=64)
        roomy = make_server(config, gpu=4096, cpu=8192)
        for prompts in rounds:
            assert tight.chat_batch(prompts, max_new_tokens=6) == roomy.chat_batch(
                prompts, max_new_tokens=6
            )
        stats = tight.manager.stats
        assert stats["swapped_out_tokens"] > 0
        assert stats["dropped_tokens"] > 0
        assert stats["recomputed_tokens"] > 0


class TestBatchSemantics:
    def test_contexts_accumulate(self, config):
        server = make_server(config)
        out = server.chat_batch([(0, [1, 2, 3]), (1, [4, 5])], max_new_tokens=3)
        assert server.context_length(0) == 3 + 3
        assert server.context_length(1) == 2 + 3
        assert server.raw_tokens[0] == [1, 2, 3] + out[0]

    def test_duplicate_conversations_rejected(self, config):
        server = make_server(config)
        with pytest.raises(ValueError, match="duplicate"):
            server.chat_batch([(0, [1]), (0, [2])])

    def test_empty_prompt_rejected(self, config):
        server = make_server(config)
        with pytest.raises(ValueError, match="empty"):
            server.chat_batch([(0, [])])

    def test_reserved_id_rejected(self, config):
        server = make_server(config)
        with pytest.raises(ValueError, match="reserved"):
            server.chat_batch([(server.SYSTEM_CONV_ID, [1, 2])])

    def test_with_system_prompt(self, config):
        shared = make_server(config)
        shared.set_system_prompt(prompt_ids=[9, 8, 7, 6])
        baseline = make_server(config)
        rng = np.random.default_rng(59)
        prompts = random_round(rng, 3)
        out_shared = shared.chat_batch(prompts, max_new_tokens=3)
        out_base = baseline.chat_batch(
            [(conv, [9, 8, 7, 6] + ids) for conv, ids in prompts],
            max_new_tokens=3,
        )
        assert out_shared == out_base

    def test_stochastic_batch_is_deterministic_per_seed(self, config):
        rng = np.random.default_rng(61)
        prompts = random_round(rng, 3)
        params = SamplingParams(temperature=0.9, top_k=16)
        a = make_server(config, seed=2).chat_batch(
            prompts, max_new_tokens=4, sampling=params
        )
        b = make_server(config, seed=2).chat_batch(
            prompts, max_new_tokens=4, sampling=params
        )
        assert a == b
