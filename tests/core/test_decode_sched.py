"""Tests for page-aware decode scheduling and the packing-cache knobs.

The scheduling policy and the packing cache are pure work-movers: they
must never change a single generated token.  The equivalence tests here
pin that — a page-aware server with the cache on produces transcripts
bit-identical to a FIFO server with the cache off, across shuffled
arrival orders and multi-turn histories.  The engine-side tests pin the
§4.3.5 victim-selection semantics: page-aware degenerates to the paper's
FIFO rule whenever residency cannot distinguish candidates.
"""

import numpy as np
import pytest

from repro.core import PensieveEngine, StatefulChatServer
from repro.model import tiny_llama_config, tiny_opt_config
from repro.serving.request import Request
from repro.sim import EventLoop

from tests.serving.conftest import (
    TINY,
    scripted_conversation,
    serve,
    spec_with_capacity,
)


def _prompt(conv, turn, length, vocab):
    return [(conv * 13 + turn * 7 + i) % vocab for i in range(length)]


class TestServerEquivalence:
    @pytest.mark.parametrize("config_fn", [tiny_opt_config, tiny_llama_config])
    def test_page_aware_with_cache_matches_fifo_without(self, config_fn):
        config = config_fn()
        caps = dict(
            gpu_capacity_tokens=2048, cpu_capacity_tokens=2048,
            chunk_size=16, page_size=8, seed=0,
        )
        fifo = StatefulChatServer(
            config, packing_cache=False, decode_sched="fifo", **caps
        )
        aware = StatefulChatServer(
            config, packing_cache=True, decode_sched="page-aware", **caps
        )
        rng = np.random.default_rng(0)
        convs = 6
        for turn in range(3):
            order = rng.permutation(convs)
            prompts = [
                (int(c), _prompt(int(c), turn, 9, config.vocab_size))
                for c in order
            ]
            out_fifo = fifo.chat_batch(prompts, max_new_tokens=7)
            out_aware = aware.chat_batch(prompts, max_new_tokens=7)
            assert out_fifo == out_aware
        # The optimized server must actually have run incrementally.
        stats = aware.model.decode_cache.stats
        assert stats["extended_rows"] > 0

    def test_single_conversation_chat_matches(self):
        config = tiny_opt_config()
        a = StatefulChatServer(config, packing_cache=True, seed=0)
        b = StatefulChatServer(config, packing_cache=False, seed=0)
        for turn in range(3):
            prompt = _prompt(0, turn, 11, config.vocab_size)
            assert a.chat(0, prompt_ids=prompt, max_new_tokens=6) == b.chat(
                0, prompt_ids=prompt, max_new_tokens=6
            )

    def test_page_aware_under_memory_pressure_matches(self):
        """Swap-outs remap slots mid-conversation; the cache must repair
        rows rather than serve stale ones."""
        config = tiny_opt_config()
        caps = dict(
            gpu_capacity_tokens=160, cpu_capacity_tokens=640,
            chunk_size=16, page_size=8, seed=0,
        )
        fifo = StatefulChatServer(
            config, packing_cache=False, decode_sched="fifo", **caps
        )
        aware = StatefulChatServer(
            config, packing_cache=True, decode_sched="page-aware", **caps
        )
        for turn in range(4):
            for conv in range(4):
                prompt = _prompt(conv, turn, 13, config.vocab_size)
                assert fifo.chat(
                    conv, prompt_ids=prompt, max_new_tokens=8
                ) == aware.chat(conv, prompt_ids=prompt, max_new_tokens=8)

    def test_invalid_decode_sched_rejected(self):
        with pytest.raises(ValueError):
            StatefulChatServer(tiny_opt_config(), decode_sched="lifo")


class TestPageAwareOrdering:
    def test_cache_row_occupants_lead_the_batch(self):
        """Round 2 re-presents the same conversations in reversed order;
        the page-aware server restores row order so every row extends
        instead of rebuilding."""
        config = tiny_opt_config()
        server = StatefulChatServer(
            config, gpu_capacity_tokens=2048, cpu_capacity_tokens=2048,
            packing_cache=True, decode_sched="page-aware", seed=0,
        )
        prompts = [
            (c, _prompt(c, 0, 9, config.vocab_size)) for c in range(4)
        ]
        server.chat_batch(prompts, max_new_tokens=6)
        rebuilt_after_round1 = server.model.decode_cache.stats["rebuilt_rows"]
        reversed_prompts = [
            (c, _prompt(c, 1, 9, config.vocab_size)) for c in reversed(range(4))
        ]
        server.chat_batch(reversed_prompts, max_new_tokens=6)
        assert (
            server.model.decode_cache.stats["rebuilt_rows"]
            == rebuilt_after_round1
        )


class TestEngineScheduling:
    def test_invalid_decode_sched_rejected(self):
        with pytest.raises(ValueError):
            PensieveEngine(
                EventLoop(), TINY, spec_with_capacity(64), decode_sched="lifo"
            )

    def _fake_request(self, request_id, conv_id, arrival):
        conv = scripted_conversation(conv_id, [(4, 4)], start=arrival)
        return Request(
            request_id=request_id, conversation=conv, turn_index=0,
            arrival_time=arrival,
        )

    def test_victim_falls_back_to_fifo_without_residency_signal(self):
        """Unknown conversations all score 0.0 residency, so page-aware
        must pick exactly the request FIFO would suspend."""
        loop = EventLoop()
        fifo = PensieveEngine(
            loop, TINY, spec_with_capacity(256), decode_sched="fifo"
        )
        aware = PensieveEngine(
            EventLoop(), TINY, spec_with_capacity(256),
            decode_sched="page-aware",
        )
        decoders = [self._fake_request(i, 100 + i, float(i)) for i in range(4)]
        assert (
            aware._pick_suspension_victim(decoders)
            is fifo._pick_suspension_victim(decoders)
        )

    @pytest.mark.parametrize("sched", ["fifo", "page-aware"])
    def test_workload_completes_under_both_policies(self, sched):
        convs = [
            scripted_conversation(
                i, [(12, 8), (6, 8)], start=i * 0.01, think=1.0
            )
            for i in range(8)
        ]
        spec = spec_with_capacity(256)
        engine, driver, _ = serve(
            lambda loop: PensieveEngine(loop, TINY, spec, decode_sched=sched),
            convs,
        )
        assert driver.outstanding == 0
        assert len(engine.metrics) == 16

    def test_page_aware_admission_prefers_resident_waiters(self):
        """Under pressure the page-aware engine finishes the same work
        while preferring waiters whose context is still on the GPU; the
        run must stay complete and deterministic."""
        convs = [
            scripted_conversation(
                i, [(16, 8), (8, 8), (4, 8)], start=i * 0.02, think=0.5
            )
            for i in range(10)
        ]
        spec = spec_with_capacity(192)
        engine, driver, _ = serve(
            lambda loop: PensieveEngine(
                loop, TINY, spec, decode_sched="page-aware"
            ),
            convs,
        )
        assert driver.outstanding == 0
        assert len(engine.metrics) == 30
