"""Tests for shared system-prompt state (paper footnote 3).

A common system prompt's KV state is prefilled once and designated
reusable: every conversation's context is the shared slots followed by its
own.  The correctness bar: serving with the shared state must produce
exactly the same outputs as prepending the system prompt to every
conversation's first turn.
"""

import numpy as np
import pytest

from repro.core import StatefulChatServer
from repro.model import tiny_llama_config, tiny_opt_config


SYSTEM = [7, 21, 9, 42, 13, 88, 30, 5]


def make_server(config, shared, gpu=512, cpu=1024, seed=1):
    server = StatefulChatServer(
        config, gpu_capacity_tokens=gpu, cpu_capacity_tokens=cpu,
        chunk_size=16, page_size=8, seed=seed,
    )
    if shared:
        server.set_system_prompt(prompt_ids=SYSTEM)
    return server


@pytest.fixture(params=["opt", "llama"])
def config(request):
    return tiny_opt_config() if request.param == "opt" else tiny_llama_config()


class TestEquivalence:
    def test_shared_prompt_equals_prepended_prompt(self, config):
        """Outputs with shared system state == outputs when each
        conversation's first turn carries the system prompt itself."""
        rng = np.random.default_rng(31)
        scripts = {
            conv: [list(rng.integers(4, 120, rng.integers(4, 10)))
                   for _ in range(3)]
            for conv in range(3)
        }
        shared = make_server(config, shared=True)
        baseline = make_server(config, shared=False)
        for turn_idx in range(3):
            for conv, turns in scripts.items():
                prompt = turns[turn_idx]
                out_shared = shared.chat(conv, prompt_ids=prompt, max_new_tokens=4)
                baseline_prompt = SYSTEM + prompt if turn_idx == 0 else prompt
                out_base = baseline.chat(
                    conv, prompt_ids=baseline_prompt, max_new_tokens=4
                )
                assert out_shared == out_base, (conv, turn_idx)

    def test_equivalence_survives_eviction_of_conversation_state(self, config):
        """The conversation's own chunks may be swapped or dropped while
        the shared prefix stays pinned; outputs still match a roomy
        baseline with prepended prompts."""
        rng = np.random.default_rng(37)
        turns = [
            (conv, list(rng.integers(4, 120, rng.integers(5, 12))))
            for _ in range(4)
            for conv in range(4)
        ]
        tight = make_server(config, shared=True, gpu=192, cpu=96)
        roomy = make_server(config, shared=True, gpu=4096, cpu=8192)
        seen = set()
        for conv, prompt in turns:
            out_tight = tight.chat(conv, prompt_ids=prompt, max_new_tokens=4)
            out_roomy = roomy.chat(conv, prompt_ids=prompt, max_new_tokens=4)
            assert out_tight == out_roomy
            seen.add(conv)
        # The tight server was actually under pressure.
        stats = tight.manager.stats
        assert stats["swapped_out_tokens"] + stats["dropped_tokens"] > 0


class TestSharing:
    def test_system_slots_allocated_once(self, config):
        server = make_server(config, shared=True)
        used_after_setup = server.manager.gpu_resident_tokens
        assert used_after_setup == len(SYSTEM)
        server.chat(0, prompt_ids=[1, 2, 3], max_new_tokens=2)
        server.chat(1, prompt_ids=[4, 5, 6], max_new_tokens=2)
        # Each conversation holds only its own tokens; the system prompt
        # contributes exactly once.
        expected = len(SYSTEM) + 2 * (3 + 2)
        assert server.manager.gpu_resident_tokens == expected

    def test_system_state_never_evicted(self, config):
        server = make_server(config, shared=True, gpu=160, cpu=96)
        rng = np.random.default_rng(41)
        for rnd in range(3):
            for conv in range(4):
                server.chat(
                    conv,
                    prompt_ids=list(rng.integers(4, 120, 8)),
                    max_new_tokens=4,
                )
        system = server.manager.conversation(server.SYSTEM_CONV_ID)
        assert system.pinned
        from repro.kvcache.chunks import ChunkLocation

        assert system.tokens_in(ChunkLocation.GPU) == len(SYSTEM)

    def test_system_prompt_tokens_property(self, config):
        assert make_server(config, shared=True).system_prompt_tokens == len(SYSTEM)
        assert make_server(config, shared=False).system_prompt_tokens == 0


class TestValidation:
    def test_must_set_before_chats(self, config):
        server = make_server(config, shared=False)
        server.chat(0, prompt_ids=[1, 2], max_new_tokens=2)
        with pytest.raises(RuntimeError):
            server.set_system_prompt(prompt_ids=SYSTEM)

    def test_cannot_set_twice(self, config):
        server = make_server(config, shared=True)
        with pytest.raises(RuntimeError):
            server.set_system_prompt(prompt_ids=[1, 2])

    def test_empty_prompt_rejected(self, config):
        server = make_server(config, shared=False)
        with pytest.raises(ValueError):
            server.set_system_prompt(prompt_ids=[])

    def test_reserved_conv_id_rejected(self, config):
        server = make_server(config, shared=True)
        with pytest.raises(ValueError):
            server.chat(server.SYSTEM_CONV_ID, prompt_ids=[1], max_new_tokens=1)
