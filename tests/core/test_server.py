"""End-to-end tests for the functional stateful chat server.

The central theorem being tested: *no cache-management decision may change
the model's output*.  A server under severe memory pressure — swapping,
dropping, recomputing — must emit exactly the same tokens as a server with
abundant memory serving the same scripted conversations.
"""

import numpy as np
import pytest

from repro.core import StatefulChatServer
from repro.kvcache.chunks import ChunkLocation
from repro.model import tiny_llama_config, tiny_opt_config


def scripted_turns(rng, num_rounds=3, num_convs=3, lo=5, hi=14):
    turns = []
    for _ in range(num_rounds):
        for conv in range(num_convs):
            size = int(rng.integers(lo, hi))
            turns.append((conv, list(rng.integers(4, 120, size=size))))
    return turns


def run_script(server, turns, max_new_tokens=5):
    return [
        server.chat(conv, prompt_ids=ids, max_new_tokens=max_new_tokens)
        for conv, ids in turns
    ]


@pytest.fixture(params=["opt", "llama"])
def config(request):
    return tiny_opt_config() if request.param == "opt" else tiny_llama_config()


class TestBasicChat:
    def test_generates_requested_tokens(self, config):
        server = StatefulChatServer(config, seed=3)
        out = server.chat(0, prompt_ids=[5, 6, 7], max_new_tokens=4)
        assert len(out) == 4
        assert all(0 <= t < config.vocab_size for t in out)

    def test_text_round_trip(self, config):
        server = StatefulChatServer(config, seed=3)
        reply = server.chat_text(0, "hello world how are you", max_new_tokens=3)
        assert isinstance(reply, str) and reply

    def test_context_accumulates_across_turns(self, config):
        server = StatefulChatServer(config, seed=3)
        server.chat(0, prompt_ids=[1, 2, 3], max_new_tokens=4)
        assert server.context_length(0) == 7
        server.chat(0, prompt_ids=[4, 5], max_new_tokens=4)
        assert server.context_length(0) == 13

    def test_empty_prompt_rejected(self, config):
        server = StatefulChatServer(config)
        with pytest.raises(ValueError):
            server.chat(0, prompt_ids=[])

    def test_chunk_page_alignment_enforced(self, config):
        with pytest.raises(ValueError):
            StatefulChatServer(config, chunk_size=12, page_size=8)

    def test_determinism(self, config):
        rng = np.random.default_rng(0)
        turns = scripted_turns(rng)
        a = run_script(StatefulChatServer(config, seed=2), turns)
        b = run_script(StatefulChatServer(config, seed=2), turns)
        assert a == b


class TestEquivalenceUnderPressure:
    """Same outputs regardless of cache capacity (the correctness core)."""

    def roomy(self, config):
        return StatefulChatServer(
            config, gpu_capacity_tokens=8192, cpu_capacity_tokens=16384,
            chunk_size=16, page_size=8, seed=1,
        )

    def test_swap_pressure_equivalence(self, config):
        rng = np.random.default_rng(11)
        turns = scripted_turns(rng, num_rounds=4, num_convs=4)
        tight = StatefulChatServer(
            config, gpu_capacity_tokens=128, cpu_capacity_tokens=2048,
            chunk_size=16, page_size=8, seed=1,
        )
        assert run_script(tight, turns) == run_script(self.roomy(config), turns)
        # The tight server really did swap.
        assert tight.manager.stats["swapped_out_tokens"] > 0
        assert tight.manager.stats["cpu_hit_tokens"] > 0
        # Pure swap pressure: nothing had to be dropped or recomputed.
        assert tight.manager.stats["dropped_tokens"] == 0
        assert tight.manager.stats["recomputed_tokens"] == 0

    def test_drop_and_recompute_equivalence(self, config):
        rng = np.random.default_rng(13)
        turns = scripted_turns(rng, num_rounds=5, num_convs=5)
        tight = StatefulChatServer(
            config, gpu_capacity_tokens=160, cpu_capacity_tokens=64,
            chunk_size=16, page_size=8, seed=1,
        )
        assert run_script(tight, turns, max_new_tokens=6) == run_script(
            self.roomy(config), turns, max_new_tokens=6
        )
        assert tight.manager.stats["dropped_tokens"] > 0
        assert tight.manager.stats["recomputed_tokens"] > 0

    def test_gpu_cache_only_equivalence(self, config):
        """cpu_capacity_tokens=0: everything evicted is recomputed."""
        rng = np.random.default_rng(17)
        turns = scripted_turns(rng, num_rounds=4, num_convs=5)
        tight = StatefulChatServer(
            config, gpu_capacity_tokens=144, cpu_capacity_tokens=0,
            chunk_size=16, page_size=8, seed=1,
        )
        assert run_script(tight, turns, max_new_tokens=6) == run_script(
            self.roomy(config), turns, max_new_tokens=6
        )
        assert tight.manager.stats["cpu_hit_tokens"] == 0
        assert tight.manager.stats["recomputed_tokens"] > 0

    def test_counters_audit_after_pressure(self, config):
        rng = np.random.default_rng(19)
        turns = scripted_turns(rng, num_rounds=3, num_convs=4)
        tight = StatefulChatServer(
            config, gpu_capacity_tokens=176, cpu_capacity_tokens=128,
            chunk_size=16, page_size=8, seed=1,
        )
        run_script(tight, turns)
        tight.manager._audit()


class TestPlacementIntrospection:
    def test_placement_reports_figure5_segments(self):
        config = tiny_opt_config()
        server = StatefulChatServer(
            config, gpu_capacity_tokens=96, cpu_capacity_tokens=64,
            chunk_size=16, page_size=8, seed=1,
        )
        rng = np.random.default_rng(23)
        for _ in range(2):
            for conv in range(5):
                server.chat(conv, prompt_ids=list(rng.integers(4, 100, 12)),
                            max_new_tokens=8)
        placements = [server.placement(c) for c in range(5)]
        locations = {loc for p in placements for loc in p}
        # Ten 20-token turns against a 96-token GPU / 64-token CPU budget
        # must spread contexts across all Figure 5 segments.
        assert "gpu" in locations
        assert "cpu" in locations
        assert "dropped" in locations

    def test_unknown_conversation_empty(self):
        server = StatefulChatServer(tiny_opt_config())
        assert server.placement(404) == {}
        assert server.context_length(404) == 0


class TestRawTokenStore:
    def test_history_matches_serving(self):
        """The persistent store (Figure 7) holds prompt + reply tokens."""
        config = tiny_opt_config()
        server = StatefulChatServer(config, seed=3)
        out1 = server.chat(0, prompt_ids=[1, 2, 3], max_new_tokens=4)
        out2 = server.chat(0, prompt_ids=[9], max_new_tokens=2)
        assert server.raw_tokens[0] == [1, 2, 3] + out1 + [9] + out2
