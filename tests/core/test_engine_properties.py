"""Property-based tests: serving engines under random workloads.

For arbitrary conversation scripts, arrival patterns and (small) cache
sizes, both the Pensieve engine and the stateless baseline must

- complete every submitted turn (no starvation, no deadlock),
- keep per-request progress consistent (first token before finish,
  generated == scripted outputs),
- and, for Pensieve, keep the cache manager's accounting audit-clean.
"""

from hypothesis import given, settings, strategies as st

from repro.core import PensieveEngine
from repro.serving import Conversation, Turn, make_vllm
from repro.sim import EventLoop
from repro.workload import ConversationDriver

from tests.serving.conftest import TINY, spec_with_capacity

conversation_strategy = st.lists(
    st.lists(
        st.tuples(st.integers(1, 24), st.integers(1, 12)),  # (prompt, output)
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=6,
)

arrival_strategy = st.lists(
    st.floats(min_value=0.0, max_value=5.0), min_size=6, max_size=6
)

think_strategy = st.floats(min_value=0.0, max_value=3.0)


def build_conversations(scripts, arrivals, think):
    conversations = []
    for conv_id, turns in enumerate(scripts):
        conversations.append(
            Conversation(
                conv_id=conv_id,
                turns=[Turn(p, o) for p, o in turns],
                start_time=arrivals[conv_id % len(arrivals)],
                think_times=[think] * (len(turns) - 1),
            )
        )
    return conversations


def run_workload(engine_factory, conversations):
    loop = EventLoop()
    engine = engine_factory(loop)
    driver = ConversationDriver(loop, engine, conversations)
    driver.run(max_events=3_000_000)
    return engine, driver


def check_progress(engine, conversations):
    total_turns = sum(c.num_turns for c in conversations)
    records = engine.metrics.records
    assert len(records) == total_turns
    for record in records:
        assert record.first_token_time <= record.finish_time
        assert record.first_token_time >= record.arrival_time
        assert record.output_tokens >= 1


@settings(max_examples=30, deadline=None)
@given(scripts=conversation_strategy, arrivals=arrival_strategy, think=think_strategy)
def test_pensieve_completes_every_workload(scripts, arrivals, think):
    conversations = build_conversations(scripts, arrivals, think)
    engine, driver = run_workload(
        lambda loop: PensieveEngine(
            loop, TINY, spec_with_capacity(256), cpu_cache_tokens=128
        ),
        conversations,
    )
    assert driver.outstanding == 0
    check_progress(engine, conversations)
    engine.manager._audit()
    for cache in engine.manager.conversations():
        cache.check_layout()


@settings(max_examples=30, deadline=None)
@given(scripts=conversation_strategy, arrivals=arrival_strategy, think=think_strategy)
def test_gpu_cache_variant_completes_every_workload(scripts, arrivals, think):
    conversations = build_conversations(scripts, arrivals, think)
    engine, driver = run_workload(
        lambda loop: PensieveEngine(
            loop, TINY, spec_with_capacity(192), cpu_cache_tokens=0
        ),
        conversations,
    )
    assert driver.outstanding == 0
    check_progress(engine, conversations)
    engine.manager._audit()


@settings(max_examples=30, deadline=None)
@given(scripts=conversation_strategy, arrivals=arrival_strategy, think=think_strategy)
def test_vllm_completes_every_workload_and_frees_memory(scripts, arrivals, think):
    conversations = build_conversations(scripts, arrivals, think)
    engine, driver = run_workload(
        lambda loop: make_vllm(loop, TINY, spec_with_capacity(256)),
        conversations,
    )
    assert driver.outstanding == 0
    check_progress(engine, conversations)
    # Stateless: every slot released once the queue drained.
    assert engine.used_tokens == 0


@settings(max_examples=20, deadline=None)
@given(scripts=conversation_strategy, arrivals=arrival_strategy)
def test_pensieve_never_prefills_more_than_stateless(scripts, arrivals):
    """For identical workloads, Pensieve's total prefilled tokens are at
    most the stateless engine's (equality when nothing is cacheable)."""
    conversations = build_conversations(scripts, arrivals, think=1.0)
    pensieve, _ = run_workload(
        lambda loop: PensieveEngine(
            loop, TINY, spec_with_capacity(512), cpu_cache_tokens=1024
        ),
        conversations,
    )
    vllm, _ = run_workload(
        lambda loop: make_vllm(loop, TINY, spec_with_capacity(512)),
        conversations,
    )
    p_prefill = sum(r.prefilled_tokens for r in pensieve.metrics.records)
    v_prefill = sum(r.prefilled_tokens for r in vllm.metrics.records)
    assert p_prefill <= v_prefill
