"""Tests for tensor-parallel (multi-GPU) serving (§4.4.2)."""

import pytest

from repro.core import PensieveEngine
from repro.gpu import A100_80GB, CostModel
from repro.gpu.costmodel import BatchShape
from repro.model import OPT_13B, OPT_66B
from repro.serving import make_vllm
from repro.sim import EventLoop
from repro.workload import ConversationDriver

from tests.serving.conftest import scripted_conversation


class TestCapacityScaling:
    def test_kv_capacity_scales_with_gpus(self):
        """Each GPU contributes its 40 GB KV reservation (§6.1)."""
        single = PensieveEngine(EventLoop(), OPT_66B.scaled_to(1), A100_80GB)
        quad = PensieveEngine(EventLoop(), OPT_66B, A100_80GB)
        assert quad.manager.gpu_capacity_tokens == pytest.approx(
            4 * single.manager.gpu_capacity_tokens, rel=0.01
        )

    def test_cpu_capacity_scales_with_gpus(self):
        """220 GB of host memory per GPU (§6.1)."""
        single = PensieveEngine(EventLoop(), OPT_66B.scaled_to(1), A100_80GB)
        quad = PensieveEngine(EventLoop(), OPT_66B, A100_80GB)
        assert quad.manager.cpu_capacity_tokens == pytest.approx(
            4 * single.manager.cpu_capacity_tokens, rel=0.01
        )

    def test_pcie_bandwidth_scales_with_gpus(self):
        """KV is sharded along the feature dimension, so each worker moves
        its slice over its own host link (§4.4.2)."""
        quad = PensieveEngine(EventLoop(), OPT_66B, A100_80GB)
        assert quad.pcie.bandwidth == pytest.approx(
            4 * A100_80GB.pcie_bandwidth
        )


class TestCostScaling:
    def test_tensor_parallel_speeds_up_iterations(self):
        shape = BatchShape.uniform(16, 1, 2048)
        single = CostModel(OPT_66B.scaled_to(1), A100_80GB).iteration_time(shape)
        quad = CostModel(OPT_66B, A100_80GB).iteration_time(shape)
        assert quad < single
        # All-reduce overhead keeps the speedup below ideal 4x.
        assert quad > single / 4

    def test_66b_on_4gpus_comparable_to_13b_on_one(self):
        """The paper's setup scales GPUs with model size; per-iteration
        times stay within the same order of magnitude."""
        shape = BatchShape.uniform(16, 1, 1024)
        t13 = CostModel(OPT_13B, A100_80GB).iteration_time(shape)
        t66 = CostModel(OPT_66B, A100_80GB).iteration_time(shape)
        assert t66 < 4 * t13


class TestEndToEnd:
    def test_pensieve_serves_multi_gpu_model(self):
        convs = [
            scripted_conversation(i, [(16, 10), (8, 8)], think=2.0)
            for i in range(3)
        ]
        loop = EventLoop()
        engine = PensieveEngine(loop, OPT_66B, A100_80GB)
        driver = ConversationDriver(loop, engine, convs)
        driver.run(max_events=1_000_000)
        assert len(engine.metrics) == 6
        engine.manager._audit()

    def test_multi_gpu_gain_exceeds_single_gpu_gain(self):
        """§6.3 in miniature: the Pensieve/vLLM latency advantage on the
        66B/4-GPU model is at least as large as on 13B/1-GPU."""
        convs = [
            scripted_conversation(i, [(64, 30), (16, 30), (16, 30)], think=1.0)
            for i in range(6)
        ]

        def run(engine_factory):
            loop = EventLoop()
            engine = engine_factory(loop)
            ConversationDriver(loop, engine, convs).run(max_events=2_000_000)
            return engine.metrics.stats().mean_normalized_latency

        gains = {}
        for config in (OPT_13B, OPT_66B):
            vllm = run(lambda loop: make_vllm(loop, config, A100_80GB))
            pensieve = run(lambda loop: PensieveEngine(loop, config, A100_80GB))
            gains[config.name] = vllm / pensieve
        assert gains["OPT-66B"] >= gains["OPT-13B"] * 0.95
        assert gains["OPT-66B"] > 1.0
