"""Tests for the Pensieve serving engine (simulation layer)."""

import pytest

from repro.core import PensieveEngine
from repro.serving import BatchConfig, make_vllm
from repro.sim import EventLoop
from repro.workload import ConversationDriver

from tests.serving.conftest import TINY, scripted_conversation, serve, spec_with_capacity


def pensieve_factory(
    capacity_tokens=4096, cpu_tokens=None, keep_trace=True, **kwargs
):
    spec = spec_with_capacity(capacity_tokens)
    if cpu_tokens is not None:
        kwargs["cpu_cache_tokens"] = cpu_tokens
    return lambda loop: PensieveEngine(
        loop, TINY, spec, keep_trace=keep_trace, **kwargs
    )


class TestBasicServing:
    def test_single_conversation_completes(self):
        engine, driver, _ = serve(
            pensieve_factory(), [scripted_conversation(0, [(8, 5), (4, 6)])]
        )
        assert len(engine.metrics) == 2
        assert driver.outstanding == 0

    def test_default_name_variants(self):
        loop = EventLoop()
        spec = spec_with_capacity(64)
        assert PensieveEngine(loop, TINY, spec).name == "Pensieve"
        assert (
            PensieveEngine(EventLoop(), TINY, spec, cpu_cache_tokens=0).name
            == "Pensieve (GPU cache)"
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PensieveEngine(EventLoop(), TINY, spec_with_capacity(64), policy="fifo")

    def test_lru_policy_accepted(self):
        engine, _, _ = serve(
            pensieve_factory(policy="lru"), [scripted_conversation(0, [(8, 4)])]
        )
        assert len(engine.metrics) == 1


class TestStatefulness:
    def test_followup_turn_reuses_cached_context(self):
        """The headline behaviour: turn 2 prefills only its new prompt."""
        engine, _, _ = serve(
            pensieve_factory(), [scripted_conversation(0, [(10, 10), (5, 5)])]
        )
        first, second = engine.metrics.records
        assert first.prefilled_tokens == 10
        assert second.prefilled_tokens == 5  # no history recompute

    def test_cached_context_matches_full_history(self):
        engine, _, _ = serve(
            pensieve_factory(), [scripted_conversation(0, [(10, 10), (5, 5)])]
        )
        cache = engine.manager.conversation(0)
        # 10 + 10 + 5 + 5 tokens, including the final output token.
        assert cache.total_tokens == 30
        assert not cache.pinned

    def test_pensieve_beats_stateless_on_multi_turn(self):
        convs = [
            scripted_conversation(i, [(16, 30), (8, 30), (8, 30)])
            for i in range(4)
        ]
        pensieve, _, _ = serve(pensieve_factory(), convs)
        spec = spec_with_capacity(4096)
        vllm, _, _ = serve(lambda l: make_vllm(l, TINY, spec), convs)
        p = pensieve.metrics.stats()
        v = vllm.metrics.stats()
        assert p.mean_normalized_latency < v.mean_normalized_latency
        assert p.total_prefilled_tokens < v.total_prefilled_tokens


class TestUnifiedBatching:
    def test_mixed_phase_batches_occur(self):
        convs = [
            scripted_conversation(0, [(8, 40)], start=0.0),
            scripted_conversation(1, [(8, 40)], start=0.05),
        ]
        loop = EventLoop()
        engine = pensieve_factory()(loop)
        phases = []
        orig = engine._execute

        def spy(batch, now):
            phases.append(
                {("prefill" if not r.prefill_done else "decode") for r in batch}
            )
            return orig(batch, now)

        engine._execute = spy
        ConversationDriver(loop, engine, convs).run(max_events=1_000_000)
        assert {"prefill", "decode"} in phases  # unified batch observed

    def test_separate_mode_never_mixes(self):
        convs = [
            scripted_conversation(0, [(8, 40)], start=0.0),
            scripted_conversation(1, [(8, 40)], start=0.05),
        ]
        loop = EventLoop()
        engine = pensieve_factory(unified=False)(loop)
        phases = []
        orig = engine._execute

        def spy(batch, now):
            phases.append(
                {("prefill" if not r.prefill_done else "decode") for r in batch}
            )
            return orig(batch, now)

        engine._execute = spy
        ConversationDriver(loop, engine, convs).run(max_events=1_000_000)
        assert all(len(p) == 1 for p in phases)


class TestCacheManagement:
    def test_ahead_of_time_swap_triggers_below_threshold(self):
        """Filling most of a small GPU cache triggers AOT copies."""
        convs = [
            scripted_conversation(i, [(20, 20)], start=float(i) * 0.5)
            for i in range(8)
        ]
        engine, _, _ = serve(pensieve_factory(capacity_tokens=256), convs)
        assert engine.trace.count("aot_swap_out") > 0
        assert engine.manager.stats["swapped_out_tokens"] > 0

    def test_returning_conversation_swaps_in(self):
        """A conversation evicted to CPU is swapped back in, not
        recomputed."""
        convs = [
            scripted_conversation(0, [(60, 20), (10, 10)], think=30.0),
            # Filler conversations push conv 0 out while it thinks.
            *[
                scripted_conversation(10 + i, [(60, 30)], start=3.0 + i)
                for i in range(4)
            ],
        ]
        engine, _, _ = serve(pensieve_factory(capacity_tokens=256), convs)
        stats = engine.manager.stats
        assert stats["cpu_hit_tokens"] > 0
        assert engine.trace.count("swap_in") >= 1

    def test_gpu_cache_variant_recomputes(self):
        """Without a CPU tier, evicted context must be recomputed."""
        convs = [
            scripted_conversation(0, [(60, 20), (10, 10)], think=30.0),
            *[
                scripted_conversation(10 + i, [(60, 30)], start=3.0 + i)
                for i in range(4)
            ],
        ]
        engine, _, _ = serve(
            pensieve_factory(capacity_tokens=256, cpu_tokens=0), convs
        )
        stats = engine.manager.stats
        assert stats["cpu_hit_tokens"] == 0
        assert stats["recomputed_tokens"] > 0
        assert len(engine.metrics) == 6

    def test_suspension_under_decode_pressure(self):
        """Concurrent decoders outgrowing the GPU suspend the youngest
        (§4.3.5) and still finish."""
        convs = [
            scripted_conversation(i, [(30, 60)], start=float(i) * 0.01)
            for i in range(4)
        ]
        engine, driver, _ = serve(
            pensieve_factory(
                capacity_tokens=160,
                batch_config=BatchConfig(max_batch_tokens=512, generation_reserve=0.0),
            ),
            convs,
        )
        assert len(engine.metrics) == 4
        assert driver.outstanding == 0

    def test_counters_stay_consistent(self):
        convs = [
            scripted_conversation(i, [(20, 15), (6, 10)], start=float(i) * 0.3)
            for i in range(6)
        ]
        engine, _, _ = serve(pensieve_factory(capacity_tokens=256), convs)
        engine.manager._audit()


class TestPipelinedSwapIn:
    def test_pipelining_reduces_latency(self):
        """Blocking swap-in must be slower than pipelined (§4.3.3)."""
        def workload():
            return [
                scripted_conversation(0, [(100, 20), (10, 20)], think=30.0),
                *[
                    scripted_conversation(10 + i, [(60, 30)], start=3.0 + i)
                    for i in range(4)
                ],
            ]

        pipe, _, _ = serve(pensieve_factory(capacity_tokens=320), workload())
        block, _, _ = serve(
            pensieve_factory(capacity_tokens=320, pipelined_swap_in=False),
            workload(),
        )
        assert pipe.manager.stats["cpu_hit_tokens"] > 0
        pipe_latency = pipe.metrics.records[-1].latency
        block_latency = block.metrics.records[-1].latency
        assert pipe_latency <= block_latency
