"""Smoke tests: every example script must run end-to-end.

The examples are part of the public deliverable; these tests execute their
``main()`` functions in-process (with stdout captured) so a refactor can
never silently break them.  The heavyweight serving examples are exercised
at reduced scale via their module-level knobs.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Cached context per conversation" in out
        assert "Cache-manager statistics" in out


class TestCachePressureTour:
    def test_runs_and_outputs_identical(self, capsys):
        load_example("cache_pressure_tour").main()
        out = capsys.readouterr().out
        assert "Every output identical" in out
        assert "recomputed" in out


class TestKernelMicrobenchmark:
    def test_runs(self, capsys):
        module = load_example("kernel_microbenchmark")
        module.main()
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "multiround / ideal" in out


class TestPaperFigures:
    def test_runs(self, capsys):
        load_example("paper_figures").main()
        out = capsys.readouterr().out
        for label in ("Figure 3", "Figure 4", "Figure 12", "Table 2"):
            assert label in out


class TestServingComparison:
    def test_runs_at_reduced_scale(self, capsys, monkeypatch):
        module = load_example("serving_comparison")
        monkeypatch.setattr(sys, "argv", ["serving_comparison.py", "2.0"])
        module.main()
        out = capsys.readouterr().out
        assert "Pensieve" in out and "vLLM" in out
        assert "prefilled tokens" in out


@pytest.mark.slow
class TestTraceAnalysis:
    def test_runs(self, capsys):
        load_example("trace_analysis").main()
        out = capsys.readouterr().out
        assert "Cache behaviour" in out
        assert "Per-turn latency" in out


class TestSystemPromptSharing:
    def test_runs_and_saves_memory(self, capsys):
        load_example("system_prompt_sharing").main()
        out = capsys.readouterr().out
        assert "Outputs identical to per-conversation prepending: True" in out
        assert "Saved" in out
