"""Deep-dive analysis of one serving run.

Serves a ShareGPT-like workload with Pensieve and with vLLM, then uses
:mod:`repro.analysis` to compare what actually happened inside: cache hit
rates, batch occupancy, PCIe utilisation, and how per-turn latency evolves
as conversations accumulate history — the mechanism behind every headline
number, plus an ASCII rendering of the latency–throughput curves.

Run:  python examples/trace_analysis.py
"""

from repro.analysis import (
    batch_occupancy,
    cache_summary,
    pcie_utilization,
    turn_latency_breakdown,
)
from repro.analysis.ascii_plot import plot_curves
from repro.core import PensieveEngine
from repro.experiments.common import run_rate_sweep, run_serving_once
from repro.gpu import A100_80GB
from repro.model import OPT_13B
from repro.serving import make_vllm
from repro.workload import SHAREGPT
from repro.workload.dataset import generate_workload

DURATION = 250.0
RATE = 8.0


def main() -> None:
    conversations = generate_workload(
        SHAREGPT, request_rate=RATE, duration=DURATION, seed=7
    )
    print(f"Workload: {sum(c.num_turns for c in conversations)} requests over "
          f"{DURATION:.0f}s at {RATE} req/s\n")

    pensieve, p_stats = run_serving_once(
        lambda loop: PensieveEngine(loop, OPT_13B, A100_80GB, keep_trace=True),
        conversations, until=DURATION, warmup=DURATION * 0.3,
    )
    vllm, v_stats = run_serving_once(
        lambda loop: make_vllm(loop, OPT_13B, A100_80GB, keep_trace=True),
        conversations, until=DURATION, warmup=DURATION * 0.3,
    )

    print("== Cache behaviour (Pensieve) ==")
    for key, value in cache_summary(pensieve).as_dict().items():
        print(f"  {key:>20}: {value}")

    print("\n== Batch occupancy ==")
    for name, engine in (("Pensieve", pensieve), ("vLLM", vllm)):
        print(f"  {name:>9}: {batch_occupancy(engine).as_dict()}")

    print("\n== PCIe utilisation (Pensieve) ==")
    for key, value in pcie_utilization(pensieve.pcie, DURATION).items():
        print(f"  {key:>20}: {value:.3f}" if isinstance(value, float)
              else f"  {key:>20}: {value}")

    print("\n== Per-turn latency (mean normalized, ms) ==")
    p_turns = turn_latency_breakdown(pensieve.metrics.records)
    v_turns = turn_latency_breakdown(vllm.metrics.records)
    print(f"  {'turn':>4} {'requests':>8} {'history':>8} "
          f"{'Pensieve':>9} {'vLLM':>9} {'vLLM prefilled':>14}")
    for turn in sorted(set(p_turns) & set(v_turns)):
        if p_turns[turn]["count"] < 5:
            continue
        print(
            f"  {turn:>4} {p_turns[turn]['count']:>8} "
            f"{p_turns[turn]['mean_history']:>8.0f} "
            f"{p_turns[turn]['mean_norm_latency'] * 1e3:>9.1f} "
            f"{v_turns[turn]['mean_norm_latency'] * 1e3:>9.1f} "
            f"{v_turns[turn]['mean_prefilled']:>14.0f}"
        )
    print("\n(The vLLM column degrades with turn index as the re-prefilled "
          "history grows; Pensieve's stays flat.)")

    print("\n== Latency-throughput curves (ASCII Figure 10) ==")
    curves = {}
    for name, factory in (
        ("vLLM", lambda loop: make_vllm(loop, OPT_13B, A100_80GB)),
        ("Pensieve", lambda loop: PensieveEngine(loop, OPT_13B, A100_80GB)),
    ):
        curves[name] = run_rate_sweep(
            factory, SHAREGPT, rates=[2, 5, 8, 11], duration=DURATION
        )
    print(plot_curves(curves, title="OPT-13B / ShareGPT"))


if __name__ == "__main__":
    main()
