"""A guided tour of Pensieve's cache states under memory pressure.

Drives the functional server into every Figure 5 placement — GPU-resident,
copied-but-lazily-reclaimable, CPU-resident, and dropped — and shows that
generated outputs are bit-identical to a server with unlimited memory at
every step.

Run:  python examples/cache_pressure_tour.py
"""

import numpy as np

from repro.core import StatefulChatServer
from repro.model import tiny_opt_config


def build(gpu_tokens, cpu_tokens):
    return StatefulChatServer(
        config=tiny_opt_config(),
        gpu_capacity_tokens=gpu_tokens,
        cpu_capacity_tokens=cpu_tokens,
        chunk_size=16,
        page_size=8,
        seed=42,
    )


def main() -> None:
    rng = np.random.default_rng(7)
    script = []
    for round_idx in range(4):
        for conv in range(4):
            size = int(rng.integers(6, 14))
            script.append((conv, list(rng.integers(4, 120, size=size))))

    tight = build(gpu_tokens=160, cpu_tokens=96)
    roomy = build(gpu_tokens=8192, cpu_tokens=16384)

    print("Serving 4 interleaved conversations, 4 turns each...\n")
    mismatches = 0
    for step, (conv, prompt) in enumerate(script):
        out_tight = tight.chat(conv, prompt_ids=prompt, max_new_tokens=6)
        out_roomy = roomy.chat(conv, prompt_ids=prompt, max_new_tokens=6)
        matches = out_tight == out_roomy
        mismatches += not matches
        placements = {c: tight.placement(c) for c in range(4) if tight.placement(c)}
        print(
            f"turn {step:>2} (conv {conv}): outputs "
            f"{'identical' if matches else 'DIFFER!'}"
        )
        if step % 4 == 3:
            print("  placements under pressure:")
            for c, placement in placements.items():
                print(f"    conv {c}: {placement}")

    stats = tight.manager.stats
    print("\nWhat the tight server had to do:")
    print(f"  swapped out : {stats['swapped_out_tokens']} tokens (GPU -> CPU)")
    print(f"  dropped     : {stats['dropped_tokens']} tokens (recompute later)")
    print(f"  CPU hits    : {stats['cpu_hit_tokens']} tokens (swapped back in)")
    print(f"  recomputed  : {stats['recomputed_tokens']} tokens (Figure 8 path)")
    print(f"\nOutput mismatches vs unlimited-memory server: {mismatches}")
    assert mismatches == 0, "cache management must never change outputs"
    print("Every output identical — cache management is invisible to users.")


if __name__ == "__main__":
    main()
