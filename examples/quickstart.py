"""Quickstart: stateful multi-turn chat serving with Pensieve.

Runs the *functional* Pensieve stack end-to-end: a (tiny, random-weight)
numpy transformer serving several conversations through the paged two-tier
KV cache.  The language output is noise — the model is untrained — but
every systems mechanism is real: KV-tokens persist across turns, get
swapped to the CPU tier under pressure, and are recomputed when dropped.

Run:  python examples/quickstart.py
"""

from repro.core import StatefulChatServer
from repro.model import tiny_llama_config


def main() -> None:
    server = StatefulChatServer(
        config=tiny_llama_config(),      # RMSNorm + RoPE + GQA, 2 layers
        gpu_capacity_tokens=256,         # deliberately small: force evictions
        cpu_capacity_tokens=512,
        chunk_size=16,
        page_size=8,
        seed=0,
    )

    users = {
        0: [
            "hello there, can you summarize the pensieve paper?",
            "what is the multi token attention kernel for?",
            "and how does the eviction policy decide?",
        ],
        1: [
            "write a haiku about key value caches",
            "now one about swapping to cpu memory",
        ],
        2: [
            "explain paged attention like i am five",
            "why does prefill get slow for long chats?",
            "thanks, that helps a lot!",
        ],
    }

    max_turns = max(len(turns) for turns in users.values())
    for round_idx in range(max_turns):
        for conv_id, turns in users.items():
            if round_idx >= len(turns):
                continue
            reply = server.chat_text(conv_id, turns[round_idx], max_new_tokens=8)
            print(f"[conv {conv_id}] user: {turns[round_idx]}")
            print(f"[conv {conv_id}] bot : {reply}")
        print("-" * 60)

    print("\nCached context per conversation (Figure 5 placement):")
    for conv_id in users:
        print(
            f"  conv {conv_id}: {server.context_length(conv_id):>3} tokens "
            f"-> {server.placement(conv_id)}"
        )

    stats = server.manager.stats
    print("\nCache-manager statistics:")
    for key in (
        "gpu_hit_tokens",
        "cpu_hit_tokens",
        "recomputed_tokens",
        "swapped_out_tokens",
        "dropped_tokens",
    ):
        print(f"  {key:>20}: {stats[key]}")


if __name__ == "__main__":
    main()
