"""Regenerate the paper's analytical figures and tables in one shot.

Covers the fast (non-serving) experiments: Figure 3 (prefill vs
generation), Figure 4 (attention vs context size), Figure 12 (kernel
microbenchmark) and Table 2 (dataset statistics).  The serving figures
(10, 11, 13, 14, 15) take minutes each; regenerate them with
``pytest benchmarks/ --benchmark-only`` or see EXPERIMENTS.md for a
recorded full-scale run.

Run:  python examples/paper_figures.py
"""

from repro.experiments.fig03 import format_fig03, run_fig03
from repro.experiments.fig04 import format_fig04, run_fig04
from repro.experiments.fig12 import format_fig12, run_fig12
from repro.experiments.tab02 import format_tab02, run_tab02


def main() -> None:
    for title, rows, fmt in (
        ("", run_fig03(), format_fig03),
        ("", run_fig04(), format_fig04),
        ("", run_fig12(), format_fig12),
        ("", run_tab02(num_conversations=3000), format_tab02),
    ):
        print(fmt(rows))
        print()


if __name__ == "__main__":
    main()
