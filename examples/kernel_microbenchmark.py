"""Multi-token attention kernel microbenchmark (Figure 12).

Two views of the same experiment:

1. the calibrated A100 cost model at the paper's scale (batch 32, query
   size 8, contexts up to 16K), and
2. wall-clock timing of this repository's real numpy kernels at small
   scale — same four implementations, same qualitative ordering.

Run:  python examples/kernel_microbenchmark.py
"""

from repro.experiments.fig12 import (
    format_fig12,
    run_fig12,
    run_fig12_measured,
)


def main() -> None:
    print("Cost-model reproduction (A100 scale, batch 32, query size 8):\n")
    rows = run_fig12()
    print(format_fig12(rows))

    print("\nKey ratios at 16384 past KV-tokens:")
    big = next(r for r in rows if r["past_kv_tokens"] == 16384)
    print(f"  copyout    / ideal: {big['copyout_s'] / big['ideal_s']:.2f}x")
    print(f"  multiround / ideal: {big['multiround_s'] / big['ideal_s']:.2f}x")
    print(f"  pensieve   / ideal: {big['pensieve_s'] / big['ideal_s']:.2f}x")

    print("\nMeasured numpy kernels (batch 8, query size 8):\n")
    measured = run_fig12_measured(
        batch_size=8, query_tokens=8, context_sizes=(64, 256, 1024), repeats=3
    )
    print(format_fig12(measured))
    print(
        "\nThe same ordering holds on real executions: the multi-token "
        "paged kernel tracks the contiguous ideal, the multi-round "
        "straw-man pays one full context pass per query token, and "
        "copy-out pays an extra copy of every past KV-token."
    )


if __name__ == "__main__":
    main()
