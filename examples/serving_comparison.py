"""Compare serving systems on a multi-turn conversation workload.

Runs the performance-layer simulation of all four systems from the paper's
evaluation — vLLM, TensorRT-LLM, Pensieve, and Pensieve (GPU cache) — on a
ShareGPT-like workload, and prints a latency/throughput table along with
each engine's cache behaviour.  This is a single-rate slice of Figure 10;
``benchmarks/test_fig10_single_gpu.py`` sweeps the full curves.

Run:  python examples/serving_comparison.py [request_rate] [model]
      model in {opt-13b, llama2-13b, opt-66b, llama2-70b}
"""

import sys

from repro.core import PensieveEngine
from repro.experiments.common import run_serving_once
from repro.gpu import A100_80GB
from repro.model import LLAMA2_13B, LLAMA2_70B, OPT_13B, OPT_66B
from repro.serving import make_tensorrt_llm, make_vllm
from repro.workload import SHAREGPT
from repro.workload.dataset import generate_workload

MODELS = {
    "opt-13b": OPT_13B,
    "llama2-13b": LLAMA2_13B,
    "opt-66b": OPT_66B,
    "llama2-70b": LLAMA2_70B,
}


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    model = MODELS[sys.argv[2].lower()] if len(sys.argv) > 2 else OPT_13B
    duration = 300.0

    print(
        f"Serving {model.name} ({model.num_gpus} GPU(s)) on a ShareGPT-like "
        f"workload at {rate} req/s for {duration:.0f} simulated seconds\n"
    )
    conversations = generate_workload(
        SHAREGPT, request_rate=rate, duration=duration, seed=7
    )
    total = sum(c.num_turns for c in conversations)
    print(f"workload: {len(conversations)} conversations, {total} requests\n")

    systems = {
        "vLLM": lambda loop: make_vllm(loop, model, A100_80GB),
        "TensorRT-LLM": lambda loop: make_tensorrt_llm(loop, model, A100_80GB),
        "Pensieve (GPU cache)": lambda loop: PensieveEngine(
            loop, model, A100_80GB, cpu_cache_tokens=0
        ),
        "Pensieve": lambda loop: PensieveEngine(loop, model, A100_80GB),
    }

    header = (
        f"{'system':>22} {'thr(req/s)':>10} {'mean nlat':>10} {'p90 nlat':>10} "
        f"{'prefilled tokens':>16}"
    )
    print(header)
    print("-" * len(header))
    for name, factory in systems.items():
        engine, stats = run_serving_once(
            factory, conversations, until=duration, warmup=duration * 0.3
        )
        print(
            f"{name:>22} {stats.throughput_rps:>10.2f} "
            f"{stats.mean_normalized_latency * 1e3:>8.1f}ms "
            f"{stats.p90_normalized_latency * 1e3:>8.1f}ms "
            f"{stats.total_prefilled_tokens:>16,}"
        )
        if hasattr(engine, "manager"):
            cache = engine.manager.stats
            lookups = max(1, cache["lookup_tokens"])
            hits = cache["gpu_hit_tokens"] + cache["cpu_hit_tokens"]
            print(
                f"{'':>22}   cache: hit rate {hits / lookups:.1%}, "
                f"recomputed {cache['recomputed_tokens']:,}, "
                f"swapped out {cache['swapped_out_tokens']:,} tokens"
            )
    print(
        "\nNote: prefilled tokens is where the systems differ — stateless "
        "engines reprocess the whole history every turn."
    )


if __name__ == "__main__":
    main()
