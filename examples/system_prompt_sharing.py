"""Shared system-prompt state across conversations (paper footnote 3).

The paper notes that a chatbot's common system prompt "can be handled by
explicitly designating the system prompt state as reusable".  This example
prefills one system prompt, serves several users against it in a single
unified batch, and shows (a) the memory saving versus per-conversation
copies and (b) that outputs are identical to prepending the prompt to
every conversation.

Run:  python examples/system_prompt_sharing.py
"""

from repro.core import StatefulChatServer
from repro.model import tiny_llama_config

SYSTEM_PROMPT = (
    "you are a concise helpful assistant that answers questions about "
    "large language model serving systems and key value caches"
)

USER_PROMPTS = {
    0: "how does pensieve avoid recomputing chat history",
    1: "what happens when the gpu cache fills up",
    2: "why are leading tokens cheaper to recompute",
    3: "explain the multi token attention kernel",
}


def build(shared: bool) -> StatefulChatServer:
    server = StatefulChatServer(
        tiny_llama_config(),
        gpu_capacity_tokens=512,
        cpu_capacity_tokens=1024,
        seed=3,
    )
    if shared:
        server.set_system_prompt(SYSTEM_PROMPT)
    return server


def main() -> None:
    shared = build(shared=True)
    baseline = build(shared=False)
    # Keep both tokenizers aligned so prompt ids match exactly.
    system_ids = baseline.tokenizer.encode(SYSTEM_PROMPT)

    shared_prompts = []
    baseline_prompts = []
    for conv_id, text in USER_PROMPTS.items():
        user_ids_shared = shared.tokenizer.encode(text)
        user_ids_base = baseline.tokenizer.encode(text)
        shared_prompts.append((conv_id, user_ids_shared))
        baseline_prompts.append((conv_id, system_ids + user_ids_base))

    print(f"System prompt: {len(system_ids)} tokens, "
          f"{len(USER_PROMPTS)} concurrent conversations\n")

    out_shared = shared.chat_batch(shared_prompts, max_new_tokens=8)
    out_base = baseline.chat_batch(baseline_prompts, max_new_tokens=8)

    identical = out_shared == out_base
    for conv_id in USER_PROMPTS:
        reply = shared.tokenizer.decode(out_shared[conv_id])
        print(f"[conv {conv_id}] {USER_PROMPTS[conv_id]!r}\n"
              f"          -> {reply}")
    print(f"\nOutputs identical to per-conversation prepending: {identical}")
    assert identical

    shared_resident = shared.manager.gpu_resident_tokens
    base_resident = baseline.manager.gpu_resident_tokens
    saving = base_resident - shared_resident
    print(f"\nGPU KV slots used:  shared state {shared_resident}, "
          f"prepended copies {base_resident}")
    print(f"Saved {saving} KV-token slots "
          f"(= {len(system_ids)} x {len(USER_PROMPTS) - 1} duplicate "
          "system-prompt copies).")


if __name__ == "__main__":
    main()
